"""Crash-safe work queue over the campaign store's lease backend.

Any number of worker processes — on one host, on many hosts sharing a
filesystem, or on a fleet sharing only a database or object store —
drain the same :class:`~repro.store.manifest.SweepManifest`
concurrently through a :class:`WorkQueue`.  The queue is three small
mechanisms, each chosen so that *no* failure mode can lose or corrupt
work:

* **Atomic claims.**  A claim is the lease backend's test-and-set
  (:meth:`~repro.store.backend.LeaseBackend.acquire`): an ``O_CREAT |
  O_EXCL`` lease file on the filesystem backend, an ``INSERT OR
  IGNORE`` row on sqlite, an ``If-None-Match`` conditional put on the
  object store.  Exactly one racing worker wins a fresh claim, with no
  lock server and no shared state beyond the backend itself.
* **Heartbeats + expiry reclaim.**  A live worker refreshes its leases'
  heartbeats (:meth:`WorkQueue.heartbeat`); a lease that has gone
  ``lease_timeout`` without a beat belonged to a dead worker and may
  be broken.  Age is judged in the **backend's own clock domain**
  (:meth:`~repro.store.backend.LeaseBackend.now` — a probe-file mtime,
  sqlite's clock, the object store's clock), never the worker's wall
  clock: heartbeats are stamped by the backend host (think NFS server),
  and ``time.time()`` deltas against a foreign clock domain mis-age
  leases under skew.
  Breaking is itself race-safe: the backend re-judges expiry
  *atomically with the removal*
  (:meth:`~repro.store.backend.LeaseBackend.break_expired` — a breaker
  lock with re-verification, a conditional ``DELETE``, an ``If-Match``
  delete), so a stale observation of the lease can never kill a live
  peer's lease, and the broken key is then competed for like a fresh
  one.
* **Idempotent completion.**  *Done* means "the item's shard holds a
  complete record" — the store's durable, last-record-wins line is the
  completion marker, not the lease.  If a lease expires while its
  worker is merely slow (not dead), two workers may run the same item;
  both append bit-identical records (results are pure functions of
  (seed, spec) — see :mod:`repro.store.fingerprint`), and the reader
  dedupes.  Duplicated work is wasted wall-clock, never wrong results.

Lease state is advisory: destroying it entirely merely forgets
in-flight claims (finished work lives in the shards), so leases need
atomicity but not durability.  :meth:`WorkQueue.cleanup` removes the
advisory debris a drained sweep would otherwise leave behind (clock
probes, orphaned breaker locks) — after a full drain plus cleanup the
lease area is empty.

Lifecycle of one item::

    pending ──claim (acquire)──▶ claimed ──run──▶ persist (store.append)
       ▲                          │                     │
       │                          │ worker dies         ▼
       └── lease expires ◀────────┘              release (drop lease)

Workers poll :meth:`WorkQueue.claim_pending` until
:meth:`WorkQueue.pending` is empty; items claimed by live peers are
simply awaited (their records appear in the store), and items leased by
dead peers come back via expiry.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.store.manifest import SweepManifest
from repro.store.store import CampaignStore

__all__ = [
    "LeaseInfo",
    "QueueStatus",
    "WorkQueue",
    "default_owner",
    "drain_manifest",
]

#: Default lease expiry. Generous on purpose: expiry only matters after
#: a worker *dies*, and a too-short timeout makes two live workers
#: duplicate (harmless but wasted) work.  Workers running long items
#: should heartbeat well inside this.
DEFAULT_LEASE_TIMEOUT = 600.0


def default_owner() -> str:
    """A globally unique worker identity: host, pid, and a nonce.

    The nonce matters: pids recycle, and an owner id that survives a
    worker's death and rebirth would let the reborn worker mistake its
    predecessor's stale leases for its own.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class LeaseInfo:
    """A point-in-time view of one lease."""

    key: str
    owner: Optional[str]  # None when the record was unreadable (mid-write)
    age: float  # seconds since the last heartbeat, in the backend's clock
    expired: bool


@dataclass(frozen=True)
class QueueStatus:
    """Sweep progress: every manifest key is in exactly one bucket."""

    total: int
    done: int  # shard holds a complete record
    claimed: int  # live lease, no record yet
    stale: int  # expired lease (worker presumed dead), no record yet
    pending: int  # no record, no lease

    @property
    def remaining(self) -> int:
        return self.total - self.done


class WorkQueue:
    """Lease-based claim/release over one manifest's shard keys.

    Args:
        store: the :class:`~repro.store.store.CampaignStore` the sweep
            persists into (completion is judged by its shards; leases
            live in its backend's lease area, namespaced by manifest).
        manifest: the sweep to drain — a
            :class:`~repro.store.manifest.SweepManifest`, or a name to
            load from the store.
        owner: worker identity recorded in leases; defaults to
            :func:`default_owner`.
        lease_timeout: seconds without a heartbeat after which a lease
            counts as abandoned and may be reclaimed.
    """

    def __init__(
        self,
        store: CampaignStore,
        manifest: Union[SweepManifest, str],
        owner: Optional[str] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        if isinstance(manifest, str):
            loaded = SweepManifest.load(store, manifest)
            assert loaded is not None  # load without missing_ok raises
            manifest = loaded
        if not isinstance(manifest, SweepManifest):
            raise TypeError(f"{manifest!r} is not a SweepManifest")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.store = store
        self.manifest = manifest
        self.owner = owner if owner is not None else default_owner()
        self.lease_timeout = float(lease_timeout)
        self.leases_backend = store.backend.leases
        self.namespace = manifest.name
        self._known = set(manifest.keys())
        # The store is append-only and records never un-complete, so
        # "done" is monotone — cache it to keep the polling loop from
        # re-parsing finished shards on every pass.
        self._done_cache: Set[str] = set()

    # -- keys and views ------------------------------------------------------

    def _check_key(self, key: str) -> str:
        if key not in self._known:
            raise KeyError(f"{key!r} is not in manifest {self.manifest.name!r}")
        return key

    def _lease_path(self, key: str) -> Path:
        """The key's lease file — filesystem-backed stores only.

        Exists for operators (and the fault suite) poking at lease
        state directly; backend-portable code uses :meth:`lease_info`.
        """
        from repro.store.backend_fs import FilesystemLeaseBackend

        self._check_key(key)
        if not isinstance(self.leases_backend, FilesystemLeaseBackend):
            raise TypeError(
                f"{self.store.backend.scheme}: stores have no lease files"
            )
        return self.leases_backend.lease_path(self.namespace, key)

    def _now(self) -> float:
        """'Now' in the clock domain that stamps lease heartbeats."""
        return self.leases_backend.now()

    def lease_info(self, key: str, now: Optional[float] = None) -> Optional[LeaseInfo]:
        """The key's current lease, or None when unleased.

        Args:
            key: a manifest shard key.
            now: the backend-clock reference to age against; defaults
                to a fresh :meth:`~repro.store.backend.LeaseBackend.now`
                reading (pass it explicitly when scanning many keys in
                one sweep).
        """
        view = self.leases_backend.get(self.namespace, self._check_key(key))
        if view is None:
            return None
        if now is None:
            now = self._now()
        age = max(0.0, now - view.heartbeat)
        return LeaseInfo(
            key=key,
            owner=view.owner,
            age=age,
            expired=age >= self.lease_timeout,
        )

    # -- completion ----------------------------------------------------------

    def is_done(self, key: str) -> bool:
        """Done = the store holds a complete record for the key."""
        if key in self._done_cache:
            return True
        if self.store.load(key) is not None:
            self._done_cache.add(key)
            return True
        return False

    def pending(self) -> List[str]:
        """Manifest keys with no complete record yet, in sweep order
        (claimed-by-someone keys included: they are not *done*)."""
        return [key for key in self.manifest.keys() if not self.is_done(key)]

    # -- claim / heartbeat / release ------------------------------------------

    def claim(self, key: str) -> bool:
        """Try to take the key's lease; True iff this worker now holds it.

        Fresh keys are claimed with the backend's test-and-set (exactly
        one racer wins).  A key whose lease has outlived
        ``lease_timeout`` is first *broken* — the backend re-judges
        expiry atomically with the removal, so a lease refreshed in the
        meantime survives — and then competed for like a fresh key.
        Keys already done are never claimed.
        """
        self._check_key(key)
        if self.is_done(key):
            return False
        for _ in range(3):  # claim, maybe break a stale lease, re-claim
            if self.leases_backend.acquire(self.namespace, key, self.owner):
                return True
            view = self.leases_backend.get(self.namespace, key)
            if view is None:
                continue  # released under us; retry the fresh claim
            if self._now() - view.heartbeat < self.lease_timeout:
                return False  # live lease held by a peer
            self.leases_backend.break_expired(
                self.namespace, key, self.lease_timeout
            )
        return False

    def claim_pending(self, limit: Optional[int] = None) -> List[str]:
        """Claim up to ``limit`` not-yet-done keys, in sweep order.

        One pass over the manifest: keys already done are skipped, keys
        leased by live peers are left alone, fresh/expired keys are
        claimed.  Returns the keys now held by this worker.
        """
        claimed: List[str] = []
        for key in self.manifest.keys():
            if limit is not None and len(claimed) >= limit:
                break
            if self.claim(key):
                claimed.append(key)
        return claimed

    def heartbeat(self, key: str) -> bool:
        """Refresh the key's lease heartbeat iff this worker owns it."""
        return self.leases_backend.heartbeat(
            self.namespace, self._check_key(key), self.owner
        )

    def heartbeat_all(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.heartbeat(key)

    def release(self, key: str) -> bool:
        """Drop the key's lease iff this worker owns it.

        Safe to call after completion *or* on abandon: completion is
        judged by the shard, so releasing an unfinished item simply
        returns it to the pending pool.
        """
        return self.leases_backend.release(
            self.namespace, self._check_key(key), self.owner
        )

    def cleanup(self) -> None:
        """Sweep the advisory lease debris this worker can clean.

        Leases themselves are released per-batch; what a finished sweep
        would otherwise leave behind is backend bookkeeping — the
        filesystem backend's clock probes and orphaned breaker locks.
        Called by :func:`drain_manifest` on the way out, so a fully
        drained manifest leaves an empty lease area.
        """
        self.leases_backend.cleanup(self.namespace, self.lease_timeout)

    # -- status ---------------------------------------------------------------

    def status(self) -> QueueStatus:
        """Count every manifest key into done/claimed/stale/pending."""
        done = claimed = stale = pending = 0
        now: Optional[float] = None
        for key in self.manifest.keys():
            if self.is_done(key):
                done += 1  # leftover leases on done keys are noise
                continue
            if now is None:
                now = self._now()  # one clock reading per scan, not per key
            lease = self.lease_info(key, now=now)
            if lease is None:
                pending += 1
            elif lease.expired:
                stale += 1
            else:
                claimed += 1
        return QueueStatus(
            total=len(self.manifest),
            done=done,
            claimed=claimed,
            stale=stale,
            pending=pending,
        )

    def leases(self) -> Dict[str, LeaseInfo]:
        """Every currently leased key's lease, keyed by shard key."""
        infos: Dict[str, LeaseInfo] = {}
        now = self._now()
        for key in self.manifest.keys():
            info = self.lease_info(key, now=now)
            if info is not None:
                infos[key] = info
        return infos


def drain_manifest(
    queue: WorkQueue,
    run_keys: Callable[[List[str]], object],
    batch_size: int = 1,
    poll_interval: float = 0.05,
) -> List[str]:
    """The worker loop: claim → run → release until the sweep is done.

    Repeatedly claims up to ``batch_size`` keys and hands them to
    ``run_keys(keys)``, which must *persist* each finished item into
    the queue's store (the runners route this through ``shard_map``'s
    ``on_result`` hook, so each record lands the moment its worker
    finishes).  While a batch runs, a background thread refreshes the
    claimed leases' heartbeats every ``lease_timeout / 3`` seconds, so
    a *live* worker's leases never expire however long its items take —
    expiry reclaims stay reserved for workers that actually died.
    Leases are released after every batch whatever happened —
    completion is judged by the shards, so releasing an unfinished
    item just returns it to the pool.

    When nothing is claimable but work remains, the loop polls: keys
    leased by live peers complete remotely (their records appear in
    the store), and keys leased by dead peers come back through lease
    expiry.  The loop therefore terminates exactly when every manifest
    key has a complete record.

    On the way out the worker sweeps its advisory lease debris
    (:meth:`WorkQueue.cleanup`), so a fully drained manifest leaves an
    empty lease area behind.

    Returns the keys this worker claimed and ran, in claim order.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    ran: List[str] = []
    try:
        while True:
            claimed = queue.claim_pending(limit=batch_size)
            if claimed:
                stop = threading.Event()

                def heartbeat_loop(keys: Tuple[str, ...] = tuple(claimed)) -> None:
                    while not stop.wait(queue.lease_timeout / 3.0):
                        queue.heartbeat_all(keys)

                beater = threading.Thread(target=heartbeat_loop, daemon=True)
                beater.start()
                try:
                    run_keys(claimed)
                finally:
                    stop.set()
                    beater.join()
                    for key in claimed:
                        queue.release(key)
                ran.extend(claimed)
                continue
            if not queue.pending():
                return ran
            time.sleep(poll_interval)
    finally:
        queue.cleanup()
