"""Crash-safe filesystem work queue over the campaign store.

Any number of worker processes — on one host, or on many hosts sharing
a filesystem — drain the same :class:`~repro.store.manifest.SweepManifest`
concurrently through a :class:`WorkQueue`.  The queue is three small
mechanisms, each chosen so that *no* failure mode can lose or corrupt
work:

* **Atomic claims.**  A claim is an ``O_CREAT | O_EXCL`` lease file
  (``store-root/leases/<manifest>/<key>.lease``) carrying the owner id.
  ``O_EXCL`` makes creation a test-and-set: exactly one racing worker
  wins a fresh claim, with no lock server and no shared state beyond
  the filesystem.
* **Heartbeats + expiry reclaim.**  A live worker refreshes its leases'
  mtimes (:meth:`WorkQueue.heartbeat`); a lease whose mtime is older
  than ``lease_timeout`` belonged to a dead worker and may be broken.
  Age is judged on the *filesystem's* clock (the mtime of a freshly
  touched probe file — :meth:`WorkQueue._fs_now`), never the worker's
  wall clock: mtimes are stamped by the filesystem host (think NFS
  server), and ``time.time()`` deltas against a foreign clock domain
  mis-age leases under skew.  Wall-clock time appears only in the
  ``claimed_at`` metadata field.
  Breaking is itself race-safe: a breaker must first win an ``O_EXCL``
  *breaker lock* (``<key>.lease.break``), re-verify expiry while
  holding it (the lease might have been broken and freshly re-claimed
  in the meantime), unlink the dead lease, drop the lock, and then
  compete for a fresh ``O_EXCL`` claim like everyone else — so a stale
  stat of the *lease* can never kill a live peer's lease, and exactly
  one racer wins the reclaimed key.  (Sweeping an *orphaned breaker
  lock* is advisory — see :meth:`WorkQueue._break_stale_lease`; in a
  pathological interleaving it can duplicate an item run, which the
  idempotent-completion rule below makes harmless.)
* **Idempotent completion.**  *Done* means "the item's shard holds a
  complete record" — the store's fsynced, last-record-wins JSONL line
  is the completion marker, not the lease.  If a lease expires while
  its worker is merely slow (not dead), two workers may run the same
  item; both append bit-identical records (results are pure functions
  of (seed, spec) — see :mod:`repro.store.fingerprint`), and the reader
  dedupes.  Duplicated work is wasted wall-clock, never wrong results.

The lease directory is advisory state: deleting it entirely merely
forgets in-flight claims (finished work lives in the shards), so no
fsync discipline is needed on lease files.

Lifecycle of one item::

    pending ──claim (O_EXCL)──▶ claimed ──run──▶ persist (store.append)
       ▲                          │                     │
       │                          │ worker dies         ▼
       └── lease expires ◀────────┘              release (unlink lease)

Workers poll :meth:`WorkQueue.claim_pending` until
:meth:`WorkQueue.pending` is empty; items claimed by live peers are
simply awaited (their records appear in the store), and items leased by
dead peers come back via expiry.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.store.manifest import SweepManifest
from repro.store.store import CampaignStore

__all__ = [
    "LeaseInfo",
    "QueueStatus",
    "WorkQueue",
    "default_owner",
    "drain_manifest",
]

#: Default lease expiry. Generous on purpose: expiry only matters after
#: a worker *dies*, and a too-short timeout makes two live workers
#: duplicate (harmless but wasted) work.  Workers running long items
#: should heartbeat well inside this.
DEFAULT_LEASE_TIMEOUT = 600.0


def default_owner() -> str:
    """A globally unique worker identity: host, pid, and a nonce.

    The nonce matters: pids recycle, and an owner id that survives a
    worker's death and rebirth would let the reborn worker mistake its
    predecessor's stale leases for its own.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class LeaseInfo:
    """A point-in-time view of one lease file."""

    key: str
    owner: Optional[str]  # None when the file was unreadable (mid-write)
    age: float  # seconds since the last heartbeat (mtime)
    expired: bool


@dataclass(frozen=True)
class QueueStatus:
    """Sweep progress: every manifest key is in exactly one bucket."""

    total: int
    done: int  # shard holds a complete record
    claimed: int  # live lease, no record yet
    stale: int  # expired lease (worker presumed dead), no record yet
    pending: int  # no record, no lease

    @property
    def remaining(self) -> int:
        return self.total - self.done


class WorkQueue:
    """Lease-based claim/release over one manifest's shard keys.

    Args:
        store: the :class:`~repro.store.store.CampaignStore` the sweep
            persists into (completion is judged by its shards).
        manifest: the sweep to drain — a
            :class:`~repro.store.manifest.SweepManifest`, or a name to
            load from the store.
        owner: worker identity written into lease files; defaults to
            :func:`default_owner`.
        lease_timeout: seconds without a heartbeat after which a lease
            counts as abandoned and may be reclaimed.
    """

    def __init__(
        self,
        store: CampaignStore,
        manifest: Union[SweepManifest, str],
        owner: Optional[str] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        if isinstance(manifest, str):
            loaded = SweepManifest.load(store, manifest)
            assert loaded is not None  # load without missing_ok raises
            manifest = loaded
        if not isinstance(manifest, SweepManifest):
            raise TypeError(f"{manifest!r} is not a SweepManifest")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.store = store
        self.manifest = manifest
        self.owner = owner if owner is not None else default_owner()
        self.lease_timeout = float(lease_timeout)
        self.lease_dir = Path(store.root) / "leases" / manifest.name
        self._known = set(manifest.keys())
        # The store is append-only and records never un-complete, so
        # "done" is monotone — cache it to keep the polling loop from
        # re-parsing finished shards on every pass.
        self._done_cache: Set[str] = set()
        # Per-worker clock probe (see _fs_now); dots/hex lease names
        # cannot collide with it, and the sanitising keeps the owner's
        # host:pid:nonce id a portable filename.
        self._clock_probe = f".clock.{re.sub(r'[^A-Za-z0-9._-]', '-', self.owner)}"

    # -- paths and parsing --------------------------------------------------

    def _lease_path(self, key: str) -> Path:
        if key not in self._known:
            raise KeyError(f"{key!r} is not in manifest {self.manifest.name!r}")
        return self.lease_dir / f"{key}.lease"

    def _read_owner(self, path: Path) -> Optional[str]:
        """The lease's owner, or None when unreadable (torn mid-write)."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return str(data["owner"])
        except (OSError, ValueError, KeyError):
            return None

    def _fs_now(self) -> float:
        """'Now' in the clock domain that stamps lease mtimes.

        Lease age is mtime arithmetic, and mtimes are set by the
        filesystem host — on a shared filesystem, *its* clock, not this
        worker's.  Touching a probe file and reading its mtime back
        yields a "now" in that same domain, so expiry judgements are
        immune to skew between the worker's wall clock and the
        filesystem's (and the worker's wall clock never enters
        duration math at all).

        When the probe cannot be written (a read-only status view of a
        foreign store), the host wall clock is the best remaining
        approximation; a mis-judged expiry there is harmless because
        breaking re-verifies under the breaker lock and completion is
        idempotent.
        """
        probe = self.lease_dir / self._clock_probe
        try:
            fd = os.open(probe, os.O_CREAT | os.O_WRONLY, 0o644)
            os.close(fd)
            os.utime(probe)
            return probe.stat().st_mtime
        except OSError:
            return time.time()

    def lease_info(self, key: str, now: Optional[float] = None) -> Optional[LeaseInfo]:
        """The key's current lease, or None when unleased.

        Args:
            key: a manifest shard key.
            now: the filesystem-clock reference to age against;
                defaults to a fresh :meth:`_fs_now` probe (pass it
                explicitly when scanning many keys in one sweep).
        """
        path = self._lease_path(key)
        try:
            st = path.stat()
        except FileNotFoundError:
            return None
        if now is None:
            now = self._fs_now()
        age = max(0.0, now - st.st_mtime)
        return LeaseInfo(
            key=key,
            owner=self._read_owner(path),
            age=age,
            expired=age >= self.lease_timeout,
        )

    # -- completion ----------------------------------------------------------

    def is_done(self, key: str) -> bool:
        """Done = the store holds a complete record for the key."""
        if key in self._done_cache:
            return True
        if self.store.load(key) is not None:
            self._done_cache.add(key)
            return True
        return False

    def pending(self) -> List[str]:
        """Manifest keys with no complete record yet, in sweep order
        (claimed-by-someone keys included: they are not *done*)."""
        return [key for key in self.manifest.keys() if not self.is_done(key)]

    # -- claim / heartbeat / release ------------------------------------------

    def _expired(self, st: os.stat_result, now: Optional[float] = None) -> bool:
        if now is None:
            now = self._fs_now()
        return now - st.st_mtime >= self.lease_timeout

    def _break_stale_lease(self, path: Path) -> None:
        """Unlink an expired lease under the key's breaker lock.

        The lock closes the ordinary stat-then-act race: between
        *observing* an expired lease and *removing* it, another racer
        may have already broken it and a third may hold a fresh claim
        at the same path — so expiry is re-verified while holding the
        ``O_EXCL`` breaker lock, and a fresh lease is left alone.

        A breaker lock whose holder died mid-break is itself expired
        state; it is swept after a fresh re-stat immediately before the
        unlink.  That sweep is advisory, not watertight: filesystem
        path locks cannot compare-and-swap on identity, so a sweeper
        stalled between its stat and its unlink can, in a pathological
        interleaving, remove a just-created breaker and briefly let two
        breakers coexist.  The system's *correctness* never rests on
        breaker exclusivity — the worst outcome is a duplicated,
        idempotent item run (see the module docstring) — exclusivity
        here only keeps the common paths from duplicating work.
        """
        brk = path.with_name(f"{path.name}.break")
        try:
            fd = os.open(brk, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            try:
                # An orphan is at least lease_timeout old, a live
                # breaker microseconds old — stat right before acting.
                if self._expired(brk.stat()):
                    brk.unlink(missing_ok=True)
            except FileNotFoundError:
                pass
            return
        os.close(fd)
        try:
            try:
                st = path.stat()
            except FileNotFoundError:
                return  # released or already broken
            if self._expired(st):
                path.unlink(missing_ok=True)
        finally:
            brk.unlink(missing_ok=True)

    def claim(self, key: str) -> bool:
        """Try to take the key's lease; True iff this worker now holds it.

        Fresh keys are claimed with ``O_CREAT | O_EXCL`` (exactly one
        racer wins).  A key whose lease has outlived ``lease_timeout``
        is first *broken* under the key's breaker lock (see
        :meth:`_break_stale_lease`) and then competed for like a fresh
        key.  Keys already done are never claimed.
        """
        if self.is_done(key):
            return False
        path = self._lease_path(key)
        # Created on first claim, not at construction: read-only views
        # (status reports on a finished or foreign store) must never
        # mutate the store directory.
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"owner": self.owner, "claimed_at": time.time()},
            separators=(",", ":"),
        ).encode("utf-8")
        for _ in range(3):  # create, maybe break a stale lease, re-create
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                pass
            else:
                try:
                    os.write(fd, payload)
                finally:
                    os.close(fd)
                return True
            try:
                st = path.stat()
            except FileNotFoundError:
                continue  # released under us; retry the fresh claim
            if not self._expired(st):
                return False  # live lease held by a peer
            self._break_stale_lease(path)
        return False

    def claim_pending(self, limit: Optional[int] = None) -> List[str]:
        """Claim up to ``limit`` not-yet-done keys, in sweep order.

        One pass over the manifest: keys already done are skipped, keys
        leased by live peers are left alone, fresh/expired keys are
        claimed.  Returns the keys now held by this worker.
        """
        claimed: List[str] = []
        for key in self.manifest.keys():
            if limit is not None and len(claimed) >= limit:
                break
            if self.claim(key):
                claimed.append(key)
        return claimed

    def heartbeat(self, key: str) -> bool:
        """Refresh the key's lease mtime iff this worker owns it."""
        path = self._lease_path(key)
        if self._read_owner(path) != self.owner:
            return False
        try:
            os.utime(path)
        except FileNotFoundError:
            return False
        return True

    def heartbeat_all(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.heartbeat(key)

    def release(self, key: str) -> bool:
        """Drop the key's lease iff this worker owns it.

        Safe to call after completion *or* on abandon: completion is
        judged by the shard, so releasing an unfinished item simply
        returns it to the pending pool.
        """
        path = self._lease_path(key)
        if self._read_owner(path) != self.owner:
            return False
        path.unlink(missing_ok=True)
        return True

    # -- status ---------------------------------------------------------------

    def status(self) -> QueueStatus:
        """Count every manifest key into done/claimed/stale/pending."""
        done = claimed = stale = pending = 0
        now: Optional[float] = None
        for key in self.manifest.keys():
            if self.is_done(key):
                done += 1  # leftover lease files on done keys are noise
                continue
            if now is None:
                now = self._fs_now()  # one probe per scan, not per key
            lease = self.lease_info(key, now=now)
            if lease is None:
                pending += 1
            elif lease.expired:
                stale += 1
            else:
                claimed += 1
        return QueueStatus(
            total=len(self.manifest),
            done=done,
            claimed=claimed,
            stale=stale,
            pending=pending,
        )

    def leases(self) -> Dict[str, LeaseInfo]:
        """Every currently leased key's lease, keyed by shard key."""
        infos: Dict[str, LeaseInfo] = {}
        now = self._fs_now()
        for key in self.manifest.keys():
            info = self.lease_info(key, now=now)
            if info is not None:
                infos[key] = info
        return infos


def drain_manifest(
    queue: WorkQueue,
    run_keys: Callable[[List[str]], object],
    batch_size: int = 1,
    poll_interval: float = 0.05,
) -> List[str]:
    """The worker loop: claim → run → release until the sweep is done.

    Repeatedly claims up to ``batch_size`` keys and hands them to
    ``run_keys(keys)``, which must *persist* each finished item into
    the queue's store (the runners route this through ``shard_map``'s
    ``on_result`` hook, so each record lands the moment its worker
    finishes).  While a batch runs, a background thread refreshes the
    claimed leases' mtimes every ``lease_timeout / 3`` seconds, so a
    *live* worker's leases never expire however long its items take —
    expiry reclaims stay reserved for workers that actually died.
    Leases are released after every batch whatever happened —
    completion is judged by the shards, so releasing an unfinished
    item just returns it to the pool.

    When nothing is claimable but work remains, the loop polls: keys
    leased by live peers complete remotely (their records appear in
    the store), and keys leased by dead peers come back through lease
    expiry.  The loop therefore terminates exactly when every manifest
    key has a complete record.

    Returns the keys this worker claimed and ran, in claim order.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    ran: List[str] = []
    while True:
        claimed = queue.claim_pending(limit=batch_size)
        if claimed:
            stop = threading.Event()

            def heartbeat_loop(keys: Tuple[str, ...] = tuple(claimed)) -> None:
                while not stop.wait(queue.lease_timeout / 3.0):
                    queue.heartbeat_all(keys)

            beater = threading.Thread(target=heartbeat_loop, daemon=True)
            beater.start()
            try:
                run_keys(claimed)
            finally:
                stop.set()
                beater.join()
                for key in claimed:
                    queue.release(key)
            ran.extend(claimed)
            continue
        if not queue.pending():
            return ran
        time.sleep(poll_interval)
