"""JSON codecs for stored campaign results.

Two record flavours flow through the store:

* **Testbed experiments** (:class:`repro.analysis.experiments.ExperimentRecord`)
  — one line per placement experiment: small scalars plus the placement.
* **Sim cells** (:class:`repro.sim.campaign.ScenarioOutcome`) — one line
  per scenario cell: the full declarative :class:`~repro.sim.spec.Scenario`
  plus every per-round array of its :class:`~repro.sim.engine.BatchResult`.

Round-trip contract (the resume guarantee leans on it): ``decode(encode
(x))`` reproduces ``x`` *bit-identically*.  Python's ``json`` emits
floats via ``repr`` (shortest round-tripping form), so finite float64
values survive exactly; non-finite values — a zero-secret experiment's
NaN reliability — are encoded as tagged sentinels because strict JSON
has no ``NaN`` literal and a bare ``null`` would collide with
legitimately-None optional fields.  Array dtypes are restored from an
explicit schema, not guessed from the JSON values.

Spec reconstruction goes through a whitelist registry of the frozen
dataclasses in :mod:`repro.sim.spec` / :mod:`repro.testbed.placements`;
a store written by a future revision with unknown spec classes fails
loudly instead of resurrecting the wrong scenario.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:
    from repro.analysis.experiments import ExperimentRecord
    from repro.sim.campaign import ScenarioOutcome

import numpy as np

from repro.sim.spec import (
    AdversarySpec,
    CollusionEstimatorSpec,
    CombinedEstimatorSpec,
    FixedFractionEstimatorSpec,
    GilbertElliottLossSpec,
    IIDLossSpec,
    LeaveOneOutEstimatorSpec,
    MatrixLossSpec,
    OracleEstimatorSpec,
    Scenario,
    ScheduleLossSpec,
)
from repro.testbed.placements import Placement

__all__ = [
    "encode_value",
    "decode_value",
    "encode_spec",
    "decode_spec",
    "experiment_record_to_json",
    "experiment_record_from_json",
    "scenario_outcome_to_json",
    "scenario_outcome_from_json",
]

#: Spec classes the decoder may instantiate (name -> class).  Anything
#: else in a stored record is a hard error, never a silent guess.
SPEC_REGISTRY: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        IIDLossSpec,
        MatrixLossSpec,
        ScheduleLossSpec,
        GilbertElliottLossSpec,
        AdversarySpec,
        OracleEstimatorSpec,
        FixedFractionEstimatorSpec,
        LeaveOneOutEstimatorSpec,
        CollusionEstimatorSpec,
        CombinedEstimatorSpec,
        Scenario,
        Placement,
    )
}

_FLOAT_TAGS = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def encode_value(value: Any) -> Any:
    """Scalars/containers -> strict JSON; non-finite floats get tagged."""
    if isinstance(value, (np.floating, np.integer)):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return {"__float__": "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} in a record")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (lists stay lists)."""
    if isinstance(value, dict):
        if set(value) == {"__float__"}:
            return _FLOAT_TAGS[value["__float__"]]
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def encode_spec(obj: Any) -> Any:
    """A registered spec dataclass -> tagged JSON-able dict."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in SPEC_REGISTRY:
            raise TypeError(f"{name} is not a registered spec class")
        fields = {
            f.name: encode_spec(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__spec__": name, **fields}
    if isinstance(obj, (list, tuple)):
        return [encode_spec(v) for v in obj]
    return encode_value(obj)


def decode_spec(data: Any) -> Any:
    """Inverse of :func:`encode_spec`; JSON arrays become tuples (every
    sequence field in the registered specs is a tuple)."""
    if isinstance(data, dict) and "__spec__" in data:
        name = data["__spec__"]
        if name not in SPEC_REGISTRY:
            raise ValueError(f"stored record references unknown spec {name!r}")
        kwargs = {
            k: decode_spec(v) for k, v in data.items() if k != "__spec__"
        }
        return SPEC_REGISTRY[name](**kwargs)
    if isinstance(data, list):
        return tuple(decode_spec(v) for v in data)
    return decode_value(data)


# -- testbed experiment records ------------------------------------------


def experiment_record_to_json(record: "ExperimentRecord") -> Dict[str, Any]:
    """:class:`ExperimentRecord` -> one JSONL line's payload."""
    return {
        "kind": "experiment",
        "n_terminals": record.n_terminals,
        "placement": encode_spec(record.placement),
        "efficiency": encode_value(record.efficiency),
        "reliability": encode_value(record.reliability),
        "secret_bits": record.secret_bits,
        "transmitted_bits": record.transmitted_bits,
        "min_entropy_bits": encode_value(record.min_entropy_bits),
        "leaked_bits": encode_value(record.leaked_bits),
    }


def experiment_record_from_json(data: Dict[str, Any]) -> "ExperimentRecord":
    """Rebuild the :class:`ExperimentRecord` bit-identically."""
    from repro.analysis.experiments import ExperimentRecord

    if data.get("kind") != "experiment":
        raise ValueError(f"not an experiment record: {data.get('kind')!r}")

    def _optional_float(name: str) -> Any:
        # Pre-measured-secrecy records lack the leakage fields; None
        # lets the dataclass reconstruct them from the reliability.
        value = data.get(name)
        return None if value is None else float(decode_value(value))

    return ExperimentRecord(
        n_terminals=int(data["n_terminals"]),
        placement=decode_spec(data["placement"]),
        efficiency=float(decode_value(data["efficiency"])),
        reliability=float(decode_value(data["reliability"])),
        secret_bits=int(data["secret_bits"]),
        transmitted_bits=int(data["transmitted_bits"]),
        min_entropy_bits=_optional_float("min_entropy_bits"),
        leaked_bits=_optional_float("leaked_bits"),
    )


# -- sim cell records -----------------------------------------------------

#: BatchResult array fields and the dtype each must be restored with
#: (JSON cannot distinguish 1.0 from 1, so the schema is explicit).
_BATCH_ARRAYS = {
    "secret_packets": np.float64,
    "public_packets": np.float64,
    "total_rows": np.float64,
    "efficiency": np.float64,
    "reliability": np.float64,
    "eve_missed": np.int64,
    "terminal_receptions": np.int64,
    "delivery_rates": np.float64,
    "hidden_dims": np.float64,
    "eve_equations": np.float64,
}

#: Fields added after the first stored shards shipped.  Old records
#: simply lack them; the decoder leaves them out and
#: :class:`~repro.sim.engine.BatchResult` reconstructs each from the
#: fields every shard has carried since v0 (backward-compatible reads,
#: never a re-encode requirement).
_OPTIONAL_BATCH_ARRAYS = frozenset({"hidden_dims", "eve_equations"})


def scenario_outcome_to_json(outcome: "ScenarioOutcome") -> Dict[str, Any]:
    """:class:`ScenarioOutcome` -> one JSONL line's payload."""
    result = outcome.result
    payload: Dict[str, Any] = {
        "kind": "sim-cell",
        "scenario": encode_spec(outcome.scenario),
    }
    for name in _BATCH_ARRAYS:
        payload[name] = encode_value(getattr(result, name).tolist())
    return payload


def scenario_outcome_from_json(data: Dict[str, Any]) -> "ScenarioOutcome":
    """Rebuild the :class:`ScenarioOutcome` (arrays, dtypes and all)."""
    from repro.sim.campaign import ScenarioOutcome
    from repro.sim.engine import BatchResult

    if data.get("kind") != "sim-cell":
        raise ValueError(f"not a sim-cell record: {data.get('kind')!r}")
    scenario = decode_spec(data["scenario"])
    arrays = {
        name: np.asarray(decode_value(data[name]), dtype=dtype)
        for name, dtype in _BATCH_ARRAYS.items()
        if name in data or name not in _OPTIONAL_BATCH_ARRAYS
    }
    return ScenarioOutcome(
        scenario=scenario, result=BatchResult(scenario=scenario, **arrays)
    )
