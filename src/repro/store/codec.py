"""Record codecs: how a shard's record lines are laid out at rest.

The store's interchange format is — and stays — JSONL: one strict-JSON
record per ``\\n``-terminated line, the format every tool in the repo
reads and writes and the one :func:`repro.store.backend.copy_store`
replicates.  This module adds an *optional* *binary* layout for the
same lines, selected per store with a ``?codec=binary`` URI query
(``file:/dir?codec=binary``): each record is a length-prefixed,
CRC-guarded frame holding the canonical JSON line's UTF-8 bytes.

Frame layout (all integers little-endian)::

    +----------+----------------+---------------+-----------------+
    | magic 2B | payload len u32| CRC32 u32     | payload (len B) |
    |  b"RB"   |                | of the payload| UTF-8 JSON line |
    +----------+----------------+---------------+-----------------+

Why frames instead of lines:

* **Appends need no escaping scan.**  A line-oriented append must
  guarantee the payload holds no raw newline; a framed append writes
  ``len`` then bytes, whatever they are.
* **Torn writes self-identify.**  A crash mid-append leaves a trailing
  fragment that fails the magic, length, or CRC check;
  :func:`scan_frames` stops there, so — exactly like the JSONL torn
  trailer — an interrupted write surfaces as *no* record, never a
  mangled one.
* **The CRC catches bit rot** that a truncated-JSON heuristic cannot
  (a flipped bit inside a long float still parses as JSON).

Codecs change only how bytes rest on the medium.  Every backend still
speaks complete record *lines* at the :class:`StoreBackend` interface,
which is why ``copy_store`` transcodes losslessly in both directions
without knowing codecs exist — it copies lines, and each side's
backend frames or terminates them as its own codec dictates.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, List, Tuple

__all__ = [
    "BINARY_EXTENSION",
    "CODECS",
    "check_codec",
    "decode_frames",
    "encode_frame",
    "encode_frames",
    "scan_frames",
]

#: The codecs a store may be opened with (``?codec=`` URI query).
CODECS: Tuple[str, ...] = ("jsonl", "binary")

#: Filename extension of binary-framed filesystem shards (JSONL shards
#: keep their historical ``.jsonl``).
BINARY_EXTENSION = ".rbin"

_MAGIC = b"RB"
_HEADER = struct.Struct("<2sII")  # magic, payload length, CRC32


def check_codec(codec: str) -> str:
    if codec not in CODECS:
        raise ValueError(
            f"unknown record codec {codec!r} (known: {', '.join(CODECS)})"
        )
    return codec


def encode_frame(line: str) -> bytes:
    """One record line as a framed binary blob.

    The framing is canonical — a given line always encodes to the same
    bytes — so re-framing a decoded shard reproduces it byte for byte.
    """
    payload = line.encode("utf-8")
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def encode_frames(lines: Iterable[str]) -> bytes:
    """Concatenated frames for a sequence of record lines."""
    return b"".join(encode_frame(line) for line in lines)


def scan_frames(buf: bytes) -> Tuple[List[str], int]:
    """Decode the longest valid frame prefix of ``buf``.

    Returns ``(lines, consumed)``: the record lines of every complete,
    CRC-valid frame from the start of the buffer, and how many bytes
    they span.  The scan stops at the first torn or corrupt frame —
    the binary analogue of the JSONL reader stopping at an
    unterminated trailer — so ``buf[:consumed]`` is the shard's
    known-good prefix and everything after it is crash debris.
    """
    lines: List[str] = []
    offset = 0
    size = len(buf)
    while size - offset >= _HEADER.size:
        magic, length, crc = _HEADER.unpack_from(buf, offset)
        if magic != _MAGIC:
            break
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            break  # torn mid-payload
        payload = buf[start:end]
        if zlib.crc32(payload) != crc:
            break  # bit rot or torn mid-header of the *next* write
        try:
            lines.append(payload.decode("utf-8"))
        except UnicodeDecodeError:
            break
        offset = end
    return lines, offset


def decode_frames(buf: bytes) -> List[str]:
    """Every complete frame's record line, in append order."""
    lines, _ = scan_frames(buf)
    return lines
