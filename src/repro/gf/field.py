"""Scalar and vectorised arithmetic in GF(2^8).

All functions accept either Python ints or numpy arrays (any shape) of
dtype uint8 and broadcast like ordinary numpy ufuncs.  Addition is XOR;
multiplication and division go through the discrete-log tables from
:mod:`repro.gf.tables`.

The hot path of the whole library is :func:`gf_matmul` — combining packet
payloads and running Gaussian elimination both reduce to it — so it is
written to stay inside vectorised numpy.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.gf.tables import EXP, GF_GENERATOR, GF_ORDER, GF_POLY, LOG

GFElement = Union[int, np.ndarray]

__all__ = [
    "GF_ORDER",
    "GF_POLY",
    "GF_GENERATOR",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_matmul",
    "gf_poly_eval",
    "as_gf_array",
]


def as_gf_array(values) -> np.ndarray:
    """Coerce ``values`` to a uint8 numpy array, validating the range.

    Raises:
        ValueError: if any value is outside [0, 255].
    """
    arr = np.asarray(values)
    if arr.dtype != np.uint8:
        if np.any((arr < 0) | (arr > 255)):
            raise ValueError("GF(256) elements must lie in [0, 255]")
        arr = arr.astype(np.uint8)
    return arr


def gf_add(a: GFElement, b: GFElement) -> GFElement:
    """Field addition (== subtraction): bitwise XOR."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(a) ^ int(b)
    return np.bitwise_xor(as_gf_array(a), as_gf_array(b))


def gf_mul(a: GFElement, b: GFElement) -> GFElement:
    """Field multiplication via log/antilog tables.

    ``a * b = g**(log a + log b)`` for nonzero operands; any zero operand
    yields zero.  The vectorised branch uses the sentinel in LOG[0]
    (a large negative value) together with ``np.where`` masking so no
    conditional indexing is needed.
    """
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if a == 0 or b == 0:
            return 0
        return int(EXP[LOG[int(a)] + LOG[int(b)]])
    a_arr = as_gf_array(a)
    b_arr = as_gf_array(b)
    la = LOG[a_arr]
    lb = LOG[b_arr]
    idx = la + lb
    zero = (a_arr == 0) | (b_arr == 0)
    # Sentinel sums are far negative; clamp them into the padded EXP range
    # before the lookup, then mask the result to zero.
    idx = np.where(zero, 0, idx)
    return np.where(zero, 0, EXP[idx]).astype(np.uint8)


def gf_inv(a: GFElement) -> GFElement:
    """Multiplicative inverse.

    Raises:
        ZeroDivisionError: on a zero operand (scalar path) — vectorised
        callers must mask zeros themselves, mirroring numpy's behaviour
        for integer division.
    """
    if isinstance(a, (int, np.integer)):
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(EXP[255 - LOG[int(a)]])
    a_arr = as_gf_array(a)
    if np.any(a_arr == 0):
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return EXP[255 - LOG[a_arr]].astype(np.uint8)


def gf_div(a: GFElement, b: GFElement) -> GFElement:
    """Field division ``a / b``; raises ZeroDivisionError when b == 0."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(EXP[LOG[int(a)] - LOG[int(b)] + 255])
    b_arr = as_gf_array(b)
    if np.any(b_arr == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    a_arr = as_gf_array(a)
    la = LOG[a_arr]
    lb = LOG[b_arr]
    idx = la - lb + 255
    zero = a_arr == 0
    idx = np.where(zero, 0, idx)
    return np.where(zero, 0, EXP[idx]).astype(np.uint8)


def gf_pow(a: GFElement, exponent: int) -> GFElement:
    """``a ** exponent`` with the usual conventions (``a**0 == 1``)."""
    if exponent < 0:
        return gf_pow(gf_inv(a), -exponent)
    if isinstance(a, (int, np.integer)):
        if exponent == 0:
            return 1
        if a == 0:
            return 0
        return int(EXP[(LOG[int(a)] * exponent) % 255])
    a_arr = as_gf_array(a)
    if exponent == 0:
        return np.ones_like(a_arr)
    idx = (LOG[a_arr] * exponent) % 255
    zero = a_arr == 0
    idx = np.where(zero, 0, idx)
    return np.where(zero, 0, EXP[idx]).astype(np.uint8)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256).

    ``a`` has shape (r, k), ``b`` has shape (k, c); the result has shape
    (r, c).  Implemented row-by-row with table lookups: for each row of
    ``a`` we compute all scalar-vector products in one vectorised XOR
    reduction.  This keeps memory bounded at O(k*c) per row while staying
    fully inside numpy.
    """
    a = as_gf_array(np.atleast_2d(a))
    b = as_gf_array(np.atleast_2d(b))
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for GF matmul: {a.shape} x {b.shape}")
    rows, k = a.shape
    _, cols = b.shape
    out = np.zeros((rows, cols), dtype=np.uint8)
    if k == 0 or rows == 0 or cols == 0:
        return out
    log_b = LOG[b]  # (k, c), sentinel at zeros
    b_zero = b == 0
    for i in range(rows):
        row = a[i]
        nz = row != 0
        if not np.any(nz):
            continue
        la = LOG[row[nz]][:, None]  # (k', 1)
        idx = la + log_b[nz]  # (k', c)
        prod = EXP[np.where(b_zero[nz], 0, idx)]
        prod = np.where(b_zero[nz], 0, prod)
        out[i] = np.bitwise_xor.reduce(prod, axis=0)
    return out


def gf_poly_eval(coeffs: np.ndarray, x: GFElement) -> GFElement:
    """Evaluate a polynomial with GF(256) coefficients at ``x`` (Horner).

    ``coeffs`` is highest-degree first.  Used by the authentication MAC
    (polynomial universal hashing).
    """
    coeffs = as_gf_array(np.atleast_1d(coeffs))
    acc: GFElement = 0
    for c in coeffs:
        acc = gf_add(gf_mul(acc, x), int(c))
    return acc
