"""Construction of the GF(2^8) discrete-log tables.

The field GF(256) is represented as polynomials over GF(2) modulo the
primitive polynomial 0x11D.  Because the polynomial is primitive, the
element ``2`` (the polynomial ``x``) generates the multiplicative group,
so every nonzero element is ``2**k`` for a unique ``k`` in ``[0, 255)``.
Multiplication then reduces to adding discrete logs, which is what the
:data:`EXP` / :data:`LOG` tables implement.

The tables are built once at import time; they are tiny (768 bytes total)
and building them takes microseconds.
"""

from __future__ import annotations

import numpy as np

#: The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
GF_POLY = 0x11D

#: Field order.
GF_ORDER = 256

#: Generator of the multiplicative group under GF_POLY.
GF_GENERATOR = 2


def build_tables(poly: int = GF_POLY) -> tuple[np.ndarray, np.ndarray]:
    """Build (EXP, LOG) tables for GF(256) under the given primitive poly.

    Returns:
        ``EXP``: shape (512,) uint8 — ``EXP[k] = g**(k mod 255)``.  The
        table is doubled so that ``EXP[LOG[a] + LOG[b]]`` never needs an
        explicit modulo.
        ``LOG``: shape (256,) int32 — ``LOG[a]`` such that
        ``g**LOG[a] == a`` for nonzero ``a``.  ``LOG[0]`` is set to a
        sentinel (``-512``) so any use of it lands outside valid products
        and is masked by callers.
    """
    exp = np.zeros(512, dtype=np.uint8)
    log = np.full(256, -512, dtype=np.int32)
    value = 1
    for k in range(255):
        exp[k] = value
        log[value] = k
        value <<= 1
        if value & 0x100:
            value ^= poly
    # Doubling lets callers index EXP[LOG[a] + LOG[b]] directly.
    exp[255:510] = exp[0:255]
    # The two trailing slots are never hit by valid products but keep
    # indexing safe for the sentinel arithmetic used in vectorised code.
    exp[510] = exp[0]
    exp[511] = exp[1]
    return exp, log


EXP, LOG = build_tables()


def multiplicative_order(element: int, poly: int = GF_POLY) -> int:
    """Order of ``element`` in the multiplicative group of the field.

    Used by tests to certify that the configured polynomial is primitive
    (the generator must have order 255).
    """
    if element == 0:
        raise ValueError("0 has no multiplicative order")
    value = 1
    for k in range(1, 256):
        value = _poly_mul(value, element, poly)
        if value == 1:
            return k
    raise AssertionError("element order not found; polynomial not irreducible?")


def _poly_mul(a: int, b: int, poly: int) -> int:
    """Carry-less polynomial multiplication modulo ``poly`` (reference impl)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= poly
    return result
