"""Finite-field substrate: arithmetic and linear algebra over GF(2^8).

Every linear combination in the protocol (y-, z- and s-packets) and every
secrecy computation (Eve's conditional entropy) is carried out over the
field GF(2^8) = GF(256).  Packet payloads are treated as vectors of field
symbols (one byte per symbol), and all combinations act symbol-wise, so a
payload of ``k`` bytes is combined with plain matrix multiplication over
the field.

The field is realised with the primitive polynomial ``x^8 + x^4 + x^3 +
x^2 + 1`` (0x11D), the conventional choice for Reed-Solomon erasure codes,
with generator element 2.

Public surface:

* :mod:`repro.gf.field` — scalar and vectorised numpy arithmetic.
* :mod:`repro.gf.linalg` — :class:`GFMatrix` with rank / solve / inverse /
  null-space, the workhorse behind both decoding and leakage measurement.
* :mod:`repro.gf.matrices` — Cauchy and Vandermonde MDS generator
  matrices, whose minor-nonsingularity properties carry the secrecy proofs.
"""

from repro.gf.field import (
    GF_ORDER,
    GF_POLY,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
)
from repro.gf.linalg import GFMatrix
from repro.gf.matrices import cauchy_matrix, is_superregular_sample, vandermonde_matrix

__all__ = [
    "GF_ORDER",
    "GF_POLY",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "GFMatrix",
    "cauchy_matrix",
    "vandermonde_matrix",
    "is_superregular_sample",
]
