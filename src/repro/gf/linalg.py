"""Linear algebra over GF(2^8): the :class:`GFMatrix` class.

Everything the protocol needs reduces to a handful of operations on
matrices over GF(256):

* **encode** — multiply a combination matrix by a payload matrix,
* **decode** — solve a linear system for missing y-packets,
* **measure leakage** — ranks of stacked knowledge matrices (this is how
  Eve's exact conditional entropy, and therefore the paper's reliability
  metric, is computed).

The implementation keeps data in numpy uint8 arrays and performs row
reduction with vectorised row operations; only the pivot search is a
Python-level loop, so cost is O(min(r,c)) vectorised passes.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.gf.field import as_gf_array, gf_matmul
from repro.gf.tables import EXP, LOG

__all__ = ["GFMatrix"]


def _scale_rows(block: np.ndarray, scalars: np.ndarray) -> np.ndarray:
    """Multiply each row of ``block`` by the matching scalar (vectorised)."""
    scalars = scalars.reshape(-1, 1)
    log_s = LOG[scalars]
    log_b = LOG[block]
    zero = (block == 0) | (scalars == 0)
    idx = np.where(zero, 0, log_s + log_b)
    return np.where(zero, 0, EXP[idx]).astype(np.uint8)


class GFMatrix:
    """A dense matrix over GF(256) backed by a numpy uint8 array.

    Instances are immutable by convention: operations return new matrices.
    The raw array is reachable via :attr:`data` for interop (e.g. feeding
    payload blocks in), but callers must not mutate it.
    """

    __slots__ = ("data",)

    def __init__(self, data) -> None:
        arr = as_gf_array(np.atleast_2d(np.asarray(data)))
        if arr.ndim != 2:
            raise ValueError("GFMatrix requires 2-D data")
        self.data = arr

    # -- constructors -------------------------------------------------

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "GFMatrix":
        return cls(np.zeros((rows, cols), dtype=np.uint8))

    @classmethod
    def identity(cls, n: int) -> "GFMatrix":
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def from_rows(cls, rows: Iterable) -> "GFMatrix":
        return cls(np.vstack([as_gf_array(np.atleast_1d(r)) for r in rows]))

    @classmethod
    def random(cls, rows: int, cols: int, rng: np.random.Generator) -> "GFMatrix":
        return cls(rng.integers(0, 256, size=(rows, cols), dtype=np.uint8))

    # -- basic protocol -----------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    @property
    def rows(self) -> int:
        return self.data.shape[0]

    @property
    def cols(self) -> int:
        return self.data.shape[1]

    def __eq__(self, other) -> bool:
        if not isinstance(other, GFMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.all(self.data == other.data))

    def __hash__(self):
        return hash((self.shape, self.data.tobytes()))

    def __repr__(self) -> str:
        return f"GFMatrix({self.rows}x{self.cols})"

    def copy(self) -> "GFMatrix":
        return GFMatrix(self.data.copy())

    # -- algebra -------------------------------------------------------

    def __add__(self, other: "GFMatrix") -> "GFMatrix":
        if self.shape != other.shape:
            raise ValueError("shape mismatch for GF matrix addition")
        return GFMatrix(np.bitwise_xor(self.data, other.data))

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        return GFMatrix(gf_matmul(self.data, other.data))

    def transpose(self) -> "GFMatrix":
        return GFMatrix(self.data.T.copy())

    def take_rows(self, indices) -> "GFMatrix":
        return GFMatrix(self.data[np.asarray(indices, dtype=np.intp), :])

    def take_cols(self, indices) -> "GFMatrix":
        return GFMatrix(self.data[:, np.asarray(indices, dtype=np.intp)])

    def vstack(self, other: "GFMatrix") -> "GFMatrix":
        if self.cols != other.cols:
            raise ValueError("column mismatch for vstack")
        return GFMatrix(np.vstack([self.data, other.data]))

    def hstack(self, other: "GFMatrix") -> "GFMatrix":
        if self.rows != other.rows:
            raise ValueError("row mismatch for hstack")
        return GFMatrix(np.hstack([self.data, other.data]))

    # -- elimination core ----------------------------------------------

    def _eliminate(self, augment: Optional[np.ndarray] = None):
        """Forward elimination to reduced row echelon form.

        Returns ``(rref, aug_rref, pivot_cols)``.  If ``augment`` is given
        it is carried along (for solving); otherwise ``aug_rref`` is None.
        """
        a = self.data.copy()
        aug = None if augment is None else as_gf_array(augment).copy()
        rows, cols = a.shape
        pivot_cols: list[int] = []
        r = 0
        for c in range(cols):
            if r >= rows:
                break
            pivot_rows = np.nonzero(a[r:, c])[0]
            if pivot_rows.size == 0:
                continue
            p = r + int(pivot_rows[0])
            if p != r:
                a[[r, p]] = a[[p, r]]
                if aug is not None:
                    aug[[r, p]] = aug[[p, r]]
            # Normalise the pivot row to a leading 1.
            inv = EXP[255 - LOG[a[r, c]]]
            a[r] = _scale_rows(a[r : r + 1], np.array([inv], dtype=np.uint8))[0]
            if aug is not None:
                aug[r] = _scale_rows(aug[r : r + 1], np.array([inv], dtype=np.uint8))[0]
            # Clear the column everywhere else in one vectorised pass.
            col = a[:, c].copy()
            col[r] = 0
            mask = col != 0
            if np.any(mask):
                factors = col[mask]
                a[mask] ^= _scale_rows(np.broadcast_to(a[r], (factors.size, cols)), factors)
                if aug is not None:
                    aug[mask] ^= _scale_rows(
                        np.broadcast_to(aug[r], (factors.size, aug.shape[1])), factors
                    )
            pivot_cols.append(c)
            r += 1
        return a, aug, pivot_cols

    def rref(self) -> tuple["GFMatrix", list[int]]:
        """Reduced row echelon form and the pivot column indices."""
        a, _, pivots = self._eliminate()
        return GFMatrix(a), pivots

    def rank(self) -> int:
        """Rank over GF(256)."""
        if self.rows == 0 or self.cols == 0:
            return 0
        _, pivots = self.rref()
        return len(pivots)

    def is_invertible(self) -> bool:
        return self.rows == self.cols and self.rank() == self.rows

    def inverse(self) -> "GFMatrix":
        """Matrix inverse; raises ValueError when singular or non-square."""
        if self.rows != self.cols:
            raise ValueError("only square matrices can be inverted")
        a, aug, pivots = self._eliminate(np.eye(self.rows, dtype=np.uint8))
        if len(pivots) != self.rows:
            raise ValueError("matrix is singular over GF(256)")
        return GFMatrix(aug)

    def solve(self, rhs: "GFMatrix") -> "GFMatrix":
        """Solve ``self @ X = rhs`` for X.

        Works for square invertible systems and for overdetermined
        consistent systems with full column rank (the decoder's case:
        more z-equations than missing y-packets).

        Raises:
            ValueError: if the system is rank-deficient in its columns or
            inconsistent.
        """
        if rhs.rows != self.rows:
            raise ValueError("rhs row count must match matrix row count")
        a, aug, pivots = self._eliminate(rhs.data)
        n_pivots = len(pivots)
        if n_pivots < self.cols:
            raise ValueError("underdetermined system: column rank deficient")
        # Consistency: rows of the rref beyond the pivots must have zero rhs.
        if n_pivots < self.rows and np.any(aug[n_pivots:] != 0):
            raise ValueError("inconsistent linear system over GF(256)")
        x = np.zeros((self.cols, rhs.cols), dtype=np.uint8)
        for row_idx, col_idx in enumerate(pivots):
            x[col_idx] = aug[row_idx]
        return GFMatrix(x)

    def null_space(self) -> "GFMatrix":
        """Basis for the right null space, one basis vector per row.

        Used by property tests to certify secrecy statements: a secret
        functional is hidden from Eve iff it has a component in the null
        space of her knowledge matrix.
        """
        rref, pivots = self.rref()
        free_cols = [c for c in range(self.cols) if c not in pivots]
        basis = np.zeros((len(free_cols), self.cols), dtype=np.uint8)
        for k, fc in enumerate(free_cols):
            basis[k, fc] = 1
            for row_idx, pc in enumerate(pivots):
                basis[k, pc] = rref.data[row_idx, fc]
        return GFMatrix(basis) if free_cols else GFMatrix.zeros(0, self.cols)

    def row_space_contains(self, vector) -> bool:
        """True iff ``vector`` lies in the row space of this matrix."""
        vec = as_gf_array(np.atleast_1d(vector)).reshape(1, -1)
        if vec.shape[1] != self.cols:
            raise ValueError("vector length must match column count")
        base = self.rank()
        return GFMatrix(np.vstack([self.data, vec])).rank() == base
