"""MDS generator matrices over GF(2^8): Cauchy and Vandermonde families.

The secrecy arguments of the protocol hinge on structured matrices:

* A **Cauchy matrix** ``C[i][j] = 1 / (x_i + y_j)`` (with all ``x_i``,
  ``y_j`` distinct) has *every square minor nonsingular* — the
  "superregular" property.  This is the strongest possible MDS-type
  guarantee and is what lets one matrix serve simultaneously as the
  z-combination block (decodability for every terminal, whatever subset
  of y-packets it is missing) and, stacked with the s-block, as a secrecy
  certificate (row spaces intersect trivially).

* A **Vandermonde matrix** ``V[i][j] = a_j ** i`` with distinct ``a_j``
  has every maximal (k x k, k = row count) minor nonsingular, which is
  the textbook MDS generator property — enough for the y-construction on
  a single support pool.

Size limits: a Cauchy matrix over GF(256) needs ``rows + cols <= 256``
distinct field points.  The privacy-amplification layer chunks larger
pools (see :mod:`repro.coding.privacy`), so these builders simply raise
on oversize requests.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import gf_inv, gf_pow
from repro.gf.linalg import GFMatrix

__all__ = [
    "cauchy_matrix",
    "vandermonde_matrix",
    "is_superregular_sample",
    "MAX_CAUCHY_POINTS",
]

#: A Cauchy matrix needs rows + cols distinct field elements.
MAX_CAUCHY_POINTS = 256


def cauchy_matrix(rows: int, cols: int, offset: int = 0) -> GFMatrix:
    """Build a ``rows x cols`` Cauchy matrix over GF(256).

    Row points are ``offset .. offset+rows-1`` and column points are
    ``offset+rows .. offset+rows+cols-1`` (all reduced mod 256 must stay
    distinct, hence the size check).  Every square submatrix of the result
    is invertible.

    Args:
        rows: number of rows (>= 0).
        cols: number of columns (>= 0).
        offset: starting field point; lets callers derive disjoint
            matrices from the same family deterministically.

    Raises:
        ValueError: if ``rows + cols + offset > 256`` (points would wrap
        and collide) or on negative sizes.
    """
    if rows < 0 or cols < 0:
        raise ValueError("matrix dimensions must be non-negative")
    if rows + cols + offset > MAX_CAUCHY_POINTS:
        raise ValueError(
            f"Cauchy matrix needs {rows + cols + offset} <= 256 distinct points; "
            "chunk the pool instead"
        )
    if rows == 0 or cols == 0:
        return GFMatrix.zeros(rows, cols)
    x = np.arange(offset, offset + rows, dtype=np.uint8)
    y = np.arange(offset + rows, offset + rows + cols, dtype=np.uint8)
    # Field addition is XOR; all x_i ^ y_j are nonzero because the point
    # sets are disjoint.
    denom = np.bitwise_xor(x[:, None], y[None, :])
    data = np.vectorize(gf_inv, otypes=[np.uint8])(denom)
    return GFMatrix(data)


def vandermonde_matrix(rows: int, cols: int, start: int = 1) -> GFMatrix:
    """Build a ``rows x cols`` Vandermonde matrix ``V[i][j] = a_j ** i``.

    Evaluation points are ``start .. start+cols-1`` and must be distinct
    and nonzero, so ``start >= 1`` and ``start + cols <= 256``.

    Any ``rows`` columns of the result are linearly independent (for
    ``rows <= cols``), i.e. the matrix generates an MDS code.
    """
    if rows < 0 or cols < 0:
        raise ValueError("matrix dimensions must be non-negative")
    if start < 1 or start + cols > 256:
        raise ValueError("Vandermonde points must be distinct nonzero field elements")
    if rows == 0 or cols == 0:
        return GFMatrix.zeros(rows, cols)
    points = np.arange(start, start + cols, dtype=np.uint8)
    data = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        data[i] = [gf_pow(int(p), i) for p in points]
    return GFMatrix(data)


def is_superregular_sample(
    matrix: GFMatrix, rng: np.random.Generator, trials: int = 50
) -> bool:
    """Spot-check the every-minor-nonsingular property by random sampling.

    Exhaustively checking all minors is exponential; tests use this
    randomised certifier (plus small exhaustive cases) instead.  Returns
    False as soon as any sampled square minor is singular.
    """
    r, c = matrix.shape
    if r == 0 or c == 0:
        return True
    max_k = min(r, c)
    for _ in range(trials):
        k = int(rng.integers(1, max_k + 1))
        row_idx = rng.choice(r, size=k, replace=False)
        col_idx = rng.choice(c, size=k, replace=False)
        minor = matrix.take_rows(sorted(row_idx)).take_cols(sorted(col_idx))
        if not minor.is_invertible():
            return False
    return True
