"""The committed, shrink-only violation baseline.

The baseline exists so the pass could have been introduced against a
dirty tree without a flag day; this repository's baseline is **empty**
(every violation the rules surfaced was fixed, not grandfathered) and
CI enforces that it only ever shrinks — a violation can be paid down,
never added.  Entries are violation fingerprints (``rule:path:line``),
stored sorted so diffs are reviewable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Iterable, List

from repro.lint.rules import Violation

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """A set of grandfathered violation fingerprints."""

    entries: FrozenSet[str] = field(default_factory=frozenset)

    def __contains__(self, violation: Violation) -> bool:
        return violation.fingerprint in self.entries

    def new_violations(self, violations: Iterable[Violation]) -> List[Violation]:
        return [v for v in violations if v not in self]

    def stale_entries(self, violations: Iterable[Violation]) -> List[str]:
        """Grandfathered entries that no longer fire — must be removed."""
        live = {v.fingerprint for v in violations}
        return sorted(self.entries - live)


def load_baseline(path: Path | str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or document.get("version") != _VERSION:
        raise ValueError(f"{path}: not a reprolint baseline (version {_VERSION})")
    entries = document.get("entries", [])
    if not isinstance(entries, list) or not all(
        isinstance(entry, str) for entry in entries
    ):
        raise ValueError(f"{path}: baseline entries must be a list of strings")
    return Baseline(entries=frozenset(entries))


def write_baseline(path: Path | str, violations: Iterable[Violation]) -> Baseline:
    """Rewrite the baseline to exactly the given violations."""
    baseline = Baseline(entries=frozenset(v.fingerprint for v in violations))
    document = {"version": _VERSION, "entries": sorted(baseline.entries)}
    Path(path).write_text(
        json.dumps(document, indent=1) + "\n", encoding="utf-8"
    )
    return baseline
