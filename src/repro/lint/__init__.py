"""`reprolint`: the repo's machine-checked reproducibility contract.

Every guarantee this reproduction makes — bit-identical resume,
live-service keys identical to the simulator, crash-safe leases —
rests on code invariants that used to live in review folklore and
after-the-fact regression tests (the ``PYTHONHASHSEED``-dependent
max-flow assignment fixed in PR 1, the ``hash()``-based
``_experiment_seed`` fixed in PR 2).  This package turns those
invariants into an AST static-analysis pass:

============  ==========================  =====================================
Rule          Name                        Invariant
============  ==========================  =====================================
R1            no-nondeterminism           no ``hash()`` / bare ``random.*`` /
                                          legacy ``np.random`` global state /
                                          raw set iteration feeding ordered
                                          output in determinism-critical code
R2            sans-io                     the sans-io engines and ``core/``
                                          never import event loops, sockets,
                                          clocks, or the filesystem
R3            monotonic-clock             ``time.time()`` is for wall-clock
                                          *timestamps*; durations come from
                                          the monotonic clocks
R4            durable-write               writes under ``store/`` follow
                                          temp+fsync+rename or append+fsync
R5            seed-provenance             every RNG construction is traceable
                                          to an explicit seed / SeedSequence
R6            typed-errors                ``service/`` fail-closed paths raise
                                          the :mod:`repro.service.errors`
                                          taxonomy, never bare/generic
============  ==========================  =====================================

Module map:

- :mod:`repro.lint.rules` — the visitor/rule framework and the six rules.
- :mod:`repro.lint.runner` — file discovery, suppression comments,
  per-file orchestration (:func:`lint_source`, :func:`lint_paths`).
- :mod:`repro.lint.baseline` — the committed shrink-only baseline.
- :mod:`repro.lint.__main__` — the ``python -m repro.lint`` CLI.

Usage::

    python -m repro.lint src scripts          # lint, compare to baseline
    python -m repro.lint --list-rules         # what is enforced, and where

Per-line suppressions use ``# reprolint: disable=R3`` (comma-separated
ids, or ``all``) on the offending line; anything broader goes in the
baseline file, which CI only ever allows to shrink.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.rules import RULES, Rule, Violation, iter_rules
from repro.lint.runner import LintReport, lint_paths, lint_source

__all__ = [
    "Baseline",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
