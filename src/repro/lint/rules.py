"""The reprolint rule framework and the six repository rules.

A rule is a small class: an ``id`` (``R1`` … ``R6``), a human name, the
invariant it encodes, the path patterns it patrols, and a ``check``
method that walks one module's AST and yields :class:`Violation`
objects.  Rules register themselves into :data:`RULES` via the
:func:`register` decorator, so adding a rule is one class and zero
wiring.

Every rule here is *syntactic*: it flags the textual idiom that caused
a real bug (see each rule's ``rationale``), not a semantic property.
That keeps the pass dependency-free, fast (one ``ast.parse`` per file)
and — because the rules run on their own source — self-hosting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "RULES",
    "ModuleSource",
    "Rule",
    "Violation",
    "iter_rules",
    "register",
]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at one source location."""

    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based
    rule: str  # "R1" … "R6" (or "E0" for unparseable files)
    message: str

    @property
    def fingerprint(self) -> str:
        """The baseline identity: rule + file + line."""
        return f"{self.rule}:{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class ModuleSource:
    """One parsed module handed to every applicable rule."""

    path: str  # repo-relative posix path
    tree: ast.Module
    lines: Tuple[str, ...] = field(default=())


class Rule:
    """Base class: subclass, set the metadata, implement ``check``."""

    id: str = ""
    name: str = ""
    rationale: str = ""
    #: fnmatch patterns over repo-relative posix paths.  ``*`` crosses
    #: ``/`` in :func:`fnmatch.fnmatch`, so ``src/repro/sim/*`` patrols
    #: the whole subtree.
    patrols: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        return any(fnmatch(path, pattern) for pattern in self.patrols)

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: ModuleSource, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to :data:`RULES`."""
    rule = cls()
    if not rule.id or rule.id in RULES:
        raise ValueError(f"rule id {rule.id!r} is empty or already registered")
    RULES[rule.id] = rule
    return cls


def iter_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


# ---------------------------------------------------------------------------
# AST helpers shared by the rules
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotate_parents(tree: ast.Module) -> None:
    """Attach ``_reprolint_parent`` links so rules can look outward."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._reprolint_parent = parent  # type: ignore[attr-defined]


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """The nearest enclosing (async) function def, via parent links."""
    current = getattr(node, "_reprolint_parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = getattr(current, "_reprolint_parent", None)
    return None


def _strip_unary(node: ast.AST) -> ast.AST:
    while isinstance(node, ast.UnaryOp):
        node = node.operand
    return node


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically certain to evaluate to a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in {"set", "frozenset"}
    return False


# ---------------------------------------------------------------------------
# R1 — no-nondeterminism
# ---------------------------------------------------------------------------

#: np.random attributes that are *seedable constructions*, not draws
#: from (or mutations of) the hidden legacy global state.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


@register
class NoNondeterminism(Rule):
    """Forbid the process-salt and global-RNG idioms in deterministic code."""

    id = "R1"
    name = "no-nondeterminism"
    rationale = (
        "PR 1 fixed a PYTHONHASHSEED-dependent max-flow assignment in "
        "coding/privacy.py and PR 2 a hash()-based _experiment_seed: "
        "hash(), bare random.*, the legacy np.random global state, and "
        "raw set iteration all vary across processes, breaking "
        "bit-identical campaigns and resume."
    )
    patrols = (
        "src/repro/sim/*",
        "src/repro/coding/*",
        "src/repro/store/fingerprint.py",
        "src/repro/service/*",
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        annotate_parents(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
                yield from self._check_ordered_sink(module, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if _is_set_expression(iterable):
                    yield self.violation(
                        module,
                        iterable,
                        "iterating a set in PYTHONHASHSEED order; wrap it "
                        "in sorted(...) before feeding ordered output",
                    )

    def _check_call(self, module: ModuleSource, node: ast.Call) -> Iterator[Violation]:
        name = dotted_name(node.func)
        if name == "hash":
            func = enclosing_function(node)
            if not (func is not None and func.name == "__hash__"):
                yield self.violation(
                    module,
                    node,
                    "hash() is salted per process (PYTHONHASHSEED); derive "
                    "identities from repro.store.fingerprint instead",
                )
            return
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random":
                if not node.args and not node.keywords:
                    yield self.violation(
                        module,
                        node,
                        "random.Random() without a seed draws OS entropy; "
                        "pass an explicit seed",
                    )
            else:
                yield self.violation(
                    module,
                    node,
                    f"random.{parts[1]}() uses the shared global RNG; "
                    "construct a seeded random.Random(seed) instead",
                )
            return
        if (
            len(parts) >= 3
            and parts[-3] in {"np", "numpy"}
            and parts[-2] == "random"
            and parts[-1] not in _NP_RANDOM_ALLOWED
        ):
            yield self.violation(
                module,
                node,
                f"np.random.{parts[-1]}() drives the legacy global state; "
                "use a Generator from np.random.default_rng(seed)",
            )

    def _check_ordered_sink(
        self, module: ModuleSource, node: ast.Call
    ) -> Iterator[Violation]:
        """``list``/``tuple``/``enumerate`` over a raw set → ordered output."""
        name = dotted_name(node.func)
        if name in {"list", "tuple", "enumerate", "iter"} and node.args:
            if _is_set_expression(node.args[0]):
                yield self.violation(
                    module,
                    node.args[0],
                    f"{name}() over a set materialises PYTHONHASHSEED "
                    "order; use sorted(...)",
                )


# ---------------------------------------------------------------------------
# R2 — sans-io purity
# ---------------------------------------------------------------------------

_IO_MODULES = {
    "asyncio",
    "socket",
    "selectors",
    "ssl",
    "time",
    "os",
    "io",
    "pathlib",
    "shutil",
    "tempfile",
    "subprocess",
    "threading",
    "multiprocessing",
    "signal",
    "fcntl",
    "random",
    "secrets",
}


@register
class SansIo(Rule):
    """The protocol engines and ``core/`` stay pure state machines."""

    id = "R2"
    name = "sans-io"
    rationale = (
        "The live service asserts its keys bit-identical to "
        "core.ProtocolSession by replaying the same traces through "
        "both; that only holds while the engines and core/ are pure "
        "functions of their inputs — no event loop, sockets, clocks, "
        "filesystem, or ambient entropy."
    )
    patrols = (
        "src/repro/core/*",
        "src/repro/service/engine.py",
        "src/repro/service/frames.py",
        "src/repro/service/derive.py",
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _IO_MODULES:
                        yield self.violation(
                            module,
                            node,
                            f"sans-io module imports {alias.name!r}; IO, "
                            "clocks and entropy belong in the drivers",
                        )
            elif isinstance(node, ast.ImportFrom):
                top = (node.module or "").split(".")[0]
                if node.level == 0 and top in _IO_MODULES:
                    yield self.violation(
                        module,
                        node,
                        f"sans-io module imports from {node.module!r}; IO, "
                        "clocks and entropy belong in the drivers",
                    )


# ---------------------------------------------------------------------------
# R3 — monotonic-clock discipline
# ---------------------------------------------------------------------------


@register
class MonotonicClock(Rule):
    """Durations come from monotonic clocks, never wall-clock deltas."""

    id = "R3"
    name = "monotonic-clock"
    rationale = (
        "time.time() steps under NTP slew and host clock changes, so "
        "wall-clock deltas silently corrupt lease expiry and timing "
        "reports; time.time() is reserved for timestamps that leave "
        "the process."
    )
    patrols = ("src/*", "scripts/*")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            operands: List[ast.AST] = []
            if isinstance(node, ast.BinOp):
                operands = [node.left, node.right]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
            elif isinstance(node, ast.AugAssign):
                operands = [node.value]
            for operand in operands:
                operand = _strip_unary(operand)
                if (
                    isinstance(operand, ast.Call)
                    and dotted_name(operand.func) == "time.time"
                ):
                    yield self.violation(
                        module,
                        operand,
                        "time.time() in duration arithmetic; use "
                        "time.monotonic()/perf_counter() (wall clock is "
                        "for timestamps only)",
                    )


# ---------------------------------------------------------------------------
# R4 — durable-write discipline
# ---------------------------------------------------------------------------


def _literal_mode(node: ast.Call) -> Optional[str]:
    """The mode of a builtin ``open`` call, when statically knowable."""
    mode: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: cannot verify


def _calls_in(func: ast.AST, names: Sequence[str]) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and dotted_name(node.func) in set(names):
            return True
    return False


def _declares_synchronous_full(scope: ast.AST) -> bool:
    """A ``PRAGMA synchronous=FULL`` string constant appears in scope."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            lowered = node.value.lower()
            if "synchronous" in lowered and "full" in lowered:
                return True
    return False


@register
class DurableWrite(Rule):
    """Every store write is crash-safe: temp+fsync+rename, or append+fsync."""

    id = "R4"
    name = "durable-write"
    rationale = (
        "Resume correctness (PR 4/5) is exactly the claim that an "
        "acknowledged record survives a crash: shard appends fsync "
        "before returning, whole-document writes go through a "
        "same-directory temp file, fsync, then os.replace, and sqlite "
        "connections run at synchronous=FULL so a COMMIT means fsync "
        "(WAL's default synchronous=NORMAL can drop acknowledged "
        "transactions on power loss)."
    )
    patrols = ("src/repro/store/*",)

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        annotate_parents(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if isinstance(node.func, ast.Attribute) and node.func.attr in {
                "write_text",
                "write_bytes",
            }:
                yield self.violation(
                    module,
                    node,
                    f".{node.func.attr}() cannot fsync before closing; use "
                    "open + flush + os.fsync (+ os.replace for rewrites)",
                )
                continue
            if name == "sqlite3.connect":
                func = enclosing_function(node)
                scope: ast.AST = func if func is not None else module.tree
                if not _declares_synchronous_full(scope):
                    yield self.violation(
                        module,
                        node,
                        "sqlite3.connect() without 'PRAGMA synchronous="
                        "FULL' in the same function; an acknowledged "
                        "COMMIT could be lost on power failure",
                    )
                continue
            if name != "open":
                continue
            mode = _literal_mode(node)
            if mode is not None and not any(c in mode for c in "wxa+"):
                continue  # read-only open
            func = enclosing_function(node)
            if func is None:
                yield self.violation(
                    module,
                    node,
                    "module-level write: wrap it in a function using the "
                    "temp+fsync+rename or append+fsync idiom",
                )
                continue
            if mode is None:
                yield self.violation(
                    module,
                    node,
                    "open() with a dynamic mode cannot be verified "
                    "crash-safe; use a literal mode",
                )
                continue
            # os.sync counts as the durability terminator too: the
            # batched-append discipline buffers many shard writes and
            # commits them with one host-wide sync per flush (Linux
            # sync(2) waits for writeback), which is exactly as durable
            # as per-file fsync and what makes flushes O(1) syncs.
            fsynced = _calls_in(func, ("os.fsync", "os.sync"))
            renamed = _calls_in(func, ("os.replace", "os.rename"))
            if ("w" in mode or "x" in mode) and not (fsynced and renamed):
                yield self.violation(
                    module,
                    node,
                    f"open(..., {mode!r}) rewrite without the "
                    "temp+fsync+os.replace idiom in the same function",
                )
            elif not fsynced:
                yield self.violation(
                    module,
                    node,
                    f"open(..., {mode!r}) append without os.fsync in the "
                    "same function; an acknowledged record could be lost",
                )


# ---------------------------------------------------------------------------
# R5 — seed provenance
# ---------------------------------------------------------------------------

#: Substrings that mark an expression as seed-derived.  Deliberately
#: generous: the rule exists to catch RNGs constructed from *nothing*
#: (OS entropy) or from process-dependent values, not to referee
#: variable naming.
_SEED_TOKENS = ("seed", "entropy", "spawn", "rng", "fingerprint")
#: Exact identifiers accepted without a substring hit — the
#: conventional short names for a SeedSequence.
_SEED_EXACT = {"ss", "seq", "SeedSequence"}


def _seed_derived(nodes: Sequence[ast.AST]) -> bool:
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Constant) and isinstance(node.value, int):
                return True
            token: Optional[str] = None
            if isinstance(node, ast.Name):
                token = node.id
            elif isinstance(node, ast.Attribute):
                token = node.attr
            elif isinstance(node, ast.keyword):
                token = node.arg
            if token is not None:
                lowered = token.lower()
                if any(mark in lowered for mark in _SEED_TOKENS):
                    return True
                if token in _SEED_EXACT:
                    return True
    return False


@register
class SeedProvenance(Rule):
    """Every RNG construction names where its seed comes from."""

    id = "R5"
    name = "seed-provenance"
    rationale = (
        "Campaign cells draw from SeedSequence(entropy, spawn_key="
        "content-hash) so stored shards survive grid growth; an RNG "
        "constructed from OS entropy (or an untraceable value) makes "
        "the experiment unrepeatable and the store unkeyable."
    )
    patrols = ("src/*", "scripts/*")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf not in {"default_rng", "Generator", "SeedSequence"}:
                continue
            if leaf == "Generator" and ".random." not in f".{name}":
                # Only numpy's np.random.Generator is in scope; bare
                # `Generator` is typing.Generator in annotations.
                continue
            arguments: List[ast.AST] = [*node.args, *node.keywords]
            if not arguments:
                yield self.violation(
                    module,
                    node,
                    f"{leaf}() with no seed draws OS entropy; pass an "
                    "explicit seed or SeedSequence",
                )
            elif not _seed_derived(arguments):
                yield self.violation(
                    module,
                    node,
                    f"{leaf}(...) from a value with no visible seed "
                    "provenance; derive it from a seed/SeedSequence "
                    "(or name it so the derivation is evident)",
                )


# ---------------------------------------------------------------------------
# R6 — typed-error discipline
# ---------------------------------------------------------------------------

_GENERIC_RAISES = {"Exception", "BaseException", "RuntimeError"}


@register
class TypedErrors(Rule):
    """Service fail-closed paths speak the errors.py taxonomy."""

    id = "R6"
    name = "typed-errors"
    rationale = (
        "Drivers map exception classes to ABORT wire codes "
        "(errors.ABORT_CODE_OF) and guarantee no key material escapes "
        "a raising session; a bare except can swallow an abort, and a "
        "generic raise reaches the peer as INTERNAL instead of its "
        "real failure mode."
    )
    patrols = ("src/repro/service/*",)

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    module,
                    node,
                    "bare except: swallows SystemExit/KeyboardInterrupt "
                    "and untyped failures; catch the narrowest "
                    "repro.service.errors class",
                )
            elif isinstance(node, ast.Raise):
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                name = dotted_name(exc) if exc is not None else None
                if name in _GENERIC_RAISES:
                    yield self.violation(
                        module,
                        node,
                        f"raise {name} bypasses the errors.py taxonomy "
                        "(peer sees AbortCode.INTERNAL); raise the typed "
                        "ServiceError subclass",
                    )
