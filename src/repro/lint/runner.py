"""File discovery, suppression comments, and per-file orchestration.

The unit of work is :func:`lint_source`: parse once, run every rule
that patrols the file's repo-relative path, drop violations suppressed
by a same-line ``# reprolint: disable=...`` comment.  :func:`lint_paths`
walks directories (skipping caches and hidden trees) and aggregates a
:class:`LintReport`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.lint.rules import RULES, ModuleSource, Rule, Violation

__all__ = ["LintReport", "lint_paths", "lint_source", "suppressions"]

#: ``# reprolint: disable=R1,R4`` (ids case-insensitive, or ``all``).
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


def suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line suppressed rule ids (``{"ALL"}`` suppresses everything).

    The comment governs exactly its own physical line — for a
    multi-line statement, put it on the line the violation reports.
    """
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = {
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        }
        if ids:
            table[lineno] = ids
    return table


def lint_source(
    source: str,
    path: str,
    rules: Iterable[Rule] | None = None,
) -> List[Violation]:
    """Lint one module's text as repo-relative ``path``.

    Unparseable source yields a single ``E0`` violation rather than
    raising: a file the pass cannot read is a finding, not a crash.
    """
    path = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="E0",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    lines = tuple(source.splitlines())
    module = ModuleSource(path=path, tree=tree, lines=lines)
    suppressed = suppressions(lines)
    found: List[Violation] = []
    for rule in rules if rules is not None else RULES.values():
        if not rule.applies_to(path):
            continue
        for violation in rule.check(module):
            active = suppressed.get(violation.line, set())
            if violation.rule.upper() in active or "ALL" in active:
                continue
            found.append(violation)
    return sorted(found)


def _discover(paths: Sequence[str], root: Path) -> Iterator[Path]:
    for given in paths:
        target = (root / given).resolve() if not Path(given).is_absolute() else Path(given)
        if target.is_file():
            if target.suffix == ".py":
                yield target
            continue
        if not target.is_dir():
            raise FileNotFoundError(f"lint target {given!r} does not exist")
        for candidate in sorted(target.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            yield candidate


@dataclass(frozen=True)
class LintReport:
    """Everything the CLI needs: what fired, over which files."""

    violations: Tuple[Violation, ...]
    files_checked: int

    @property
    def fingerprints(self) -> Set[str]:
        return {violation.fingerprint for violation in self.violations}


def lint_paths(
    paths: Sequence[str],
    root: Path | str | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths``, relative to ``root`` (cwd).

    Rule patrol patterns match repo-relative posix paths, so run this
    from the repository root (or pass it as ``root``).
    """
    base = Path(root) if root is not None else Path.cwd()
    violations: List[Violation] = []
    seen: Set[Path] = set()
    count = 0
    for file_path in _discover(paths, base):
        if file_path in seen:
            continue
        seen.add(file_path)
        count += 1
        try:
            relative = file_path.relative_to(base.resolve()).as_posix()
        except ValueError:
            relative = file_path.as_posix()
        violations.extend(
            lint_source(file_path.read_text(encoding="utf-8"), relative)
        )
    return LintReport(violations=tuple(sorted(violations)), files_checked=count)
