"""``python -m repro.lint`` — run the reproducibility contract.

Exit status: 0 when the tree is clean against the baseline, 1 when new
violations fired (or the baseline holds stale, already-fixed entries —
it is shrink-only by construction), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.rules import iter_rules
from repro.lint.runner import lint_paths

DEFAULT_PATHS = ("src", "scripts")
DEFAULT_BASELINE = "lint-baseline.json"


def _list_rules() -> str:
    blocks: List[str] = []
    for rule in iter_rules():
        patrols = ", ".join(rule.patrols)
        blocks.append(
            f"{rule.id} ({rule.name})\n"
            f"  patrols: {patrols}\n"
            f"  why: {rule.rationale}"
        )
    return "\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-enforced determinism, sans-io and durability contract",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline file of grandfathered violations "
        f"(default: {DEFAULT_BASELINE}; missing file = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to the current violations and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule, its patrol area and rationale",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        report = lint_paths(args.paths, root=Path.cwd())
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        baseline = write_baseline(args.baseline, report.violations)
        print(
            f"wrote {len(baseline.entries)} entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} to {args.baseline}"
        )
        return 0

    baseline = load_baseline(args.baseline) if not args.no_baseline else None
    violations = (
        list(report.violations)
        if baseline is None
        else baseline.new_violations(report.violations)
    )
    stale = baseline.stale_entries(report.violations) if baseline is not None else []

    for violation in violations:
        print(violation.render())
    for fingerprint in stale:
        print(
            f"stale baseline entry {fingerprint}: the violation no longer "
            f"fires — remove it from {args.baseline} (shrink-only)"
        )
    grandfathered = (
        len(report.violations) - len(violations) if baseline is not None else 0
    )
    summary = (
        f"{report.files_checked} files checked, {len(violations)} new "
        f"violation{'s' if len(violations) != 1 else ''}"
    )
    if grandfathered:
        summary += f", {grandfathered} baselined"
    if stale:
        summary += f", {len(stale)} stale baseline entries"
    print(summary)
    return 1 if violations or stale else 0


if __name__ == "__main__":
    sys.exit(main())
