"""Terminal-side decoding: phases 1 and 2 from a receiver's viewpoint.

The leader broadcasts *descriptors* (which x-ids, which coefficient
family) — never contents.  Each terminal then runs:

1. :func:`decode_y_from_x` — rebuild every y-packet whose support it
   fully received (phase 1 step 4).
2. :func:`recover_missing_y` — solve for the y-packets it is missing
   using the public z-contents (phase 2 step 2).
3. :func:`assemble_secret` — apply the s-map to the now-complete y-set
   (phase 2 step 4).

All functions are pure: they take descriptors + payload maps and return
payload maps, so they are directly property-testable.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.coding.privacy import GroupCodingPlan, Phase2Chunk, YAllocation
from repro.gf.field import as_gf_array
from repro.gf.linalg import GFMatrix

__all__ = [
    "decodable_y_indices",
    "decode_y_from_x",
    "recover_missing_y",
    "assemble_secret",
]


def decodable_y_indices(allocation: YAllocation, terminal) -> list:
    """Global y-row indices ``terminal`` can rebuild from its x-packets."""
    return allocation.rows_for_terminal(terminal)


def decode_y_from_x(
    allocation: YAllocation, terminal, received_x: Mapping
) -> dict:
    """Phase 1 step 4: reconstruct this terminal's decodable y-packets.

    Args:
        allocation: the leader's broadcast y-plan.
        terminal: this terminal's id.
        received_x: x-id -> payload (uint8 array) for packets received.

    Returns:
        global y-row index -> payload.

    Raises:
        KeyError: if the allocation claims this terminal decodes a block
            but a support packet is missing from ``received_x`` — that
            would mean the reception report was wrong.
    """
    out: dict = {}
    offset = 0
    for block in allocation.blocks:
        if terminal in block.subset:
            payloads = np.vstack(
                [as_gf_array(np.atleast_1d(received_x[xid])) for xid in block.support]
            )
            y_vals = (block.matrix @ GFMatrix(payloads)).data
            for r in range(block.rows):
                out[offset + r] = y_vals[r]
        offset += block.rows
    return out


def recover_missing_y(
    chunk: Phase2Chunk, known_y: Mapping, z_payloads: np.ndarray
) -> dict:
    """Phase 2 step 2: complete one chunk's y-set from the public z-packets.

    Args:
        chunk: the chunk descriptor (global row ids + z-map).
        known_y: global y-row index -> payload, for rows this terminal
            decoded in phase 1 (other chunks' rows are ignored).
        z_payloads: uint8 array of shape (chunk.n_public, payload_len)
            with the broadcast z-contents, in z-row order.

    Returns:
        global y-row index -> payload for *all* rows of the chunk.

    Raises:
        ValueError: if more rows are missing than the z-map can recover
            (the leader built the plan wrong) or shapes mismatch.
    """
    rows = list(chunk.y_rows)
    local_known = [k for k, g in enumerate(rows) if g in known_y]
    local_missing = [k for k, g in enumerate(rows) if g not in known_y]
    if not local_missing:
        return {g: known_y[g] for g in rows}
    if len(local_missing) > chunk.n_public:
        raise ValueError(
            f"{len(local_missing)} y-packets missing but only "
            f"{chunk.n_public} z-packets available"
        )
    z_payloads = as_gf_array(np.atleast_2d(z_payloads))
    if z_payloads.shape[0] != chunk.n_public:
        raise ValueError("z payload count does not match the z-map")
    if local_known:
        known_matrix = GFMatrix(
            np.vstack([as_gf_array(np.atleast_1d(known_y[rows[k]])) for k in local_known])
        )
        contribution = chunk.z_matrix.take_cols(local_known) @ known_matrix
        rhs = GFMatrix(np.bitwise_xor(z_payloads, contribution.data))
    else:
        rhs = GFMatrix(z_payloads)
    solved = chunk.z_matrix.take_cols(local_missing).solve(rhs)
    out = {g: known_y[g] for g in rows if g in known_y}
    for j, k in enumerate(local_missing):
        out[rows[k]] = solved.data[j]
    return out


def assemble_secret(plan: GroupCodingPlan, full_y: Mapping) -> np.ndarray:
    """Phase 2 step 4: compute the s-packets (the group secret).

    Args:
        plan: the phase-2 plan (all chunks).
        full_y: global y-row index -> payload; must cover every chunk row.

    Returns:
        uint8 array of shape (L, payload_len) — the concatenated group
        secret, chunk by chunk.  Shape (0, 0) when L == 0.
    """
    pieces = []
    for chunk in plan.chunks:
        if chunk.n_secret == 0:
            continue
        y_block = GFMatrix(
            np.vstack([as_gf_array(np.atleast_1d(full_y[g])) for g in chunk.y_rows])
        )
        pieces.append((chunk.s_matrix @ y_block).data)
    if not pieces:
        return np.zeros((0, 0), dtype=np.uint8)
    return np.vstack(pieces)
