"""Privacy amplification: the y/z/s combination constructions.

This module is our concrete realisation of the constructions the paper
delegates to its technical report.  The requirements, straight from §3 of
the paper:

* **y-packets** (phase 1): linear combinations of x-packets such that
  terminal ``T_i`` can reconstruct ``M_i`` of them from what it received,
  while Eve — who missed at least the estimator's lower bound of
  x-packets — can reconstruct *none* (jointly: her information about the
  whole y-vector is zero).
* **z-packets** (phase 2, public): ``M - L`` combinations of y-packets
  whose *contents* are broadcast so every terminal completes its y-set.
* **s-packets** (phase 2, secret): ``L = min_i M_i`` combinations whose
  identities only are broadcast; they are the group secret and must stay
  uniform given the z-contents and everything else Eve heard.

Construction summary (see DESIGN.md §4 for the argument):

1. Partition the x-packets Alice sent by *reception pattern* — the exact
   subset of terminals that acknowledged each packet.
2. Solve a small LP (Dinkelbach fractional programming) deciding how many
   y-packets to dedicate to each terminal-subset ``T`` and which pattern
   cells fund them, maximising the protocol's efficiency metric.
3. Realise the plan with *disjoint support slices*: each block of
   y-packets owns a private set of x-ids, sliced out of cells whose
   packets all of ``T`` received, sized so the estimator certifies enough
   Eve-misses inside every slice.  Block coefficients are Cauchy, so any
   miss pattern meeting the per-slice counts leaves the block full rank;
   disjointness makes the stacked matrix block-diagonal, so the *joint*
   y-vector is then uniform given Eve's observations — a deterministic
   secrecy certificate, no randomised construction involved.
4. Phase 2 uses the first ``M - L`` rows of an ``M x M`` Cauchy matrix as
   the z-map and the last ``L`` rows as the s-map: every minor of the
   z-block is nonsingular (any terminal can solve for any ≤ M - L missing
   y-packets) and the stacked matrix is invertible (the s-packets are
   uniform given the z-packets).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.gf.linalg import GFMatrix
from repro.gf.matrices import cauchy_matrix

try:  # scipy is a hard dependency of the package, but keep the import local-ish
    from scipy.optimize import linprog
except ImportError as exc:  # pragma: no cover - environment guard
    raise ImportError("repro.coding.privacy requires scipy") from exc

__all__ = [
    "BudgetFn",
    "CombinationBlock",
    "YAllocation",
    "Phase2Chunk",
    "GroupCodingPlan",
    "plan_y_allocation",
    "build_phase2_matrices",
    "solve_transport_counts",
    "MAX_BLOCK_POINTS",
    "MAX_PHASE2_ROWS",
]

#: ``budget_fn(ids, exclude)`` returns a certified lower bound (a float —
#: rate-based estimators scale smoothly and must not truncate on small
#: queries) on how many of the given x-packet ids Eve missed.  ``exclude``
#: names terminals that must not serve as evidence (the paper's
#: leave-one-out estimator pretends each *other* terminal is Eve; a block
#: decodable by subset ``T`` can only cite terminals outside ``T``).
#: Estimators live in :mod:`repro.core.estimator`; this module only
#: consumes the callable.  Flooring to whole packets happens once per
#: block, at build time.
BudgetFn = Callable[[Sequence[int], frozenset], float]

#: A Cauchy block of ``a`` rows on a support of ``m`` ids needs
#: ``a + m <= 256`` field points; pools are chunked below this.
MAX_BLOCK_POINTS = 256

#: Phase-2 Cauchy matrices are ``M x M`` stacked from ``2M`` points.
MAX_PHASE2_ROWS = 128


@dataclass(frozen=True)
class CombinationBlock:
    """A block of y-packets decodable by a fixed set of terminals.

    Attributes:
        subset: terminal ids that received every support packet and can
            therefore reconstruct these y-rows in phase 1.
        support: the x-packet ids combined (disjoint from all other
            blocks' supports by construction).
        matrix: ``rows x len(support)`` Cauchy coefficient block.
        certified_budget: the estimator's lower bound on Eve's misses
            inside ``support`` at build time (``>= rows``).
    """

    subset: frozenset
    support: tuple
    matrix: GFMatrix
    certified_budget: int

    @property
    def rows(self) -> int:
        return self.matrix.rows

    def __post_init__(self) -> None:
        if self.matrix.cols != len(self.support):
            raise ValueError("coefficient columns must match support size")
        if self.rows > len(self.support):
            raise ValueError("cannot extract more secrets than support packets")


@dataclass
class YAllocation:
    """The full phase-1 plan: ordered combination blocks plus bookkeeping.

    Row indices are global across blocks, in block order; this global
    order is what phase 2 and Eve's accounting use.
    """

    blocks: list = field(default_factory=list)
    receivers: tuple = ()

    @property
    def total_rows(self) -> int:
        """M — the total number of y-packets."""
        return sum(b.rows for b in self.blocks)

    def block_row_offsets(self) -> list:
        offsets = []
        acc = 0
        for b in self.blocks:
            offsets.append(acc)
            acc += b.rows
        return offsets

    def rows_for_terminal(self, terminal) -> list:
        """Global y-row indices terminal ``terminal`` can decode (M_i rows)."""
        rows = []
        offset = 0
        for b in self.blocks:
            if terminal in b.subset:
                rows.extend(range(offset, offset + b.rows))
            offset += b.rows
        return rows

    def m_i(self, terminal) -> int:
        return sum(b.rows for b in self.blocks if terminal in b.subset)

    def min_m_i(self) -> int:
        """L — the size cap of the group secret."""
        if not self.receivers:
            return 0
        return min(self.m_i(t) for t in self.receivers)

    def support_ids(self) -> list:
        ids = []
        for b in self.blocks:
            ids.extend(b.support)
        return ids

    def global_matrix(self, column_ids: Sequence[int]) -> GFMatrix:
        """The M x len(column_ids) map from x-payloads to y-payloads.

        ``column_ids`` fixes the column order (typically every x-id the
        leader transmitted); block coefficients land in their support's
        columns, zero elsewhere.  Used by Eve's exact accounting and by
        tests; terminals decode block-locally instead.
        """
        col_of = {xid: j for j, xid in enumerate(column_ids)}
        out = np.zeros((self.total_rows, len(column_ids)), dtype=np.uint8)
        offset = 0
        for b in self.blocks:
            cols = [col_of[xid] for xid in b.support]
            out[offset : offset + b.rows, cols] = b.matrix.data
            offset += b.rows
        return GFMatrix(out)


@dataclass(frozen=True)
class Phase2Chunk:
    """Phase-2 matrices for one chunk of y-rows.

    Attributes:
        y_rows: global y-row indices in this chunk (ordered).
        z_matrix: ``(m_c - l_c) x m_c`` public-combination map.
        s_matrix: ``l_c x m_c`` secret-combination map.
    """

    y_rows: tuple
    z_matrix: GFMatrix
    s_matrix: GFMatrix

    @property
    def size(self) -> int:
        return len(self.y_rows)

    @property
    def n_secret(self) -> int:
        return self.s_matrix.rows

    @property
    def n_public(self) -> int:
        return self.z_matrix.rows


@dataclass
class GroupCodingPlan:
    """Everything phase 2 needs: the chunked z/s matrices."""

    chunks: list

    @property
    def total_secret(self) -> int:
        """Total group-secret size L (packets)."""
        return sum(c.n_secret for c in self.chunks)

    @property
    def total_public(self) -> int:
        """Total number of z-packets whose contents go on the air."""
        return sum(c.n_public for c in self.chunks)


# ---------------------------------------------------------------------------
# Allocation planning (the LP of DESIGN.md §4 step 2)
# ---------------------------------------------------------------------------


def _pattern_cells(reports: Mapping) -> dict:
    """Group x-ids by their reception pattern (the set of terminals that
    received them).  Packets nobody received are useless and dropped."""
    pattern_of: dict = {}
    for terminal, ids in reports.items():
        for xid in ids:
            pattern_of.setdefault(xid, set()).add(terminal)
    cells: dict = {}
    for xid, terms in pattern_of.items():
        cells.setdefault(frozenset(terms), []).append(xid)
    for ids in cells.values():
        ids.sort()
    return cells


def _candidate_subsets(
    receivers: Sequence, cells: Mapping, max_subset_size: Optional[int] = None
) -> list:
    """Terminal subsets worth dedicating y-blocks to.

    For up to 8 receivers we enumerate every nonempty subset that is
    contained in at least one reception pattern (others have empty
    pools).  Beyond that we restrict to the patterns themselves plus
    their high-order intersections, a documented heuristic that keeps the
    LP small for stress tests.

    ``max_subset_size`` caps |T|: blocks decodable by large subsets live
    on high-order intersection pools whose composition is correlated
    with channel state, which biases *empirical* Eve estimators; capping
    the order trades efficiency for estimator soundness (see the
    estimator-granularity ablation benchmark).
    """
    receivers = tuple(receivers)
    if len(receivers) <= 8:
        candidates = set()
        for pattern in cells:
            members = sorted(pattern)
            for mask in range(1, 1 << len(members)):
                subset = frozenset(
                    members[k] for k in range(len(members)) if mask >> k & 1
                )
                candidates.add(subset)
    else:
        candidates = set(cells)
        full = frozenset(receivers)
        candidates.add(full)
        for pattern in cells:
            for t in receivers:
                reduced = pattern - {t}
                if reduced:
                    candidates.add(frozenset(reduced))
    if max_subset_size is not None:
        candidates = {s for s in candidates if len(s) <= max_subset_size}
    return sorted(candidates, key=lambda s: (len(s), sorted(s)))


def _solve_allocation_lp(
    receivers: Sequence,
    cells: Mapping,
    pair_budgets: Mapping,
    overhead_packets: float,
    z_cost_factor: float = 2.0,
    max_iterations: int = 8,
) -> dict:
    """Dinkelbach LP: choose fractional per-(subset, cell) y-row counts.

    Maximises ``L / (overhead_packets + M - L)`` — the efficiency metric
    with ``overhead_packets`` accounting for everything already spent
    (the x-transmissions).  ``pair_budgets[(T, P)]`` is the estimator's
    view of how many Eve-misses cell ``P`` can fund for a block decodable
    by ``T``.  Returns ``{(subset, pattern): rows}``.
    """
    receivers = tuple(receivers)
    pairs = [tp for tp, budget in pair_budgets.items() if budget > 0]
    if not pairs or not receivers:
        return {}
    n_vars = len(pairs) + 1  # trailing variable is L
    l_idx = len(pairs)

    a_ub = []
    b_ub = []
    # Per-pair budget: f_(T,P) <= pair_budgets[(T,P)]
    for j, tp in enumerate(pairs):
        row = np.zeros(n_vars)
        row[j] = 1.0
        a_ub.append(row)
        b_ub.append(float(pair_budgets[tp]))
    # Cell capacity: sum_T f_(T,P) <= max_T budget(T,P) — the cell holds
    # at most that many certified Eve-misses under the most favourable
    # exclusion, and slices are disjoint.
    for P in cells:
        row = np.zeros(n_vars)
        cap = 0.0
        hit = False
        for j, (T, Pj) in enumerate(pairs):
            if Pj == P:
                row[j] = 1.0
                hit = True
                cap = max(cap, float(pair_budgets[(T, P)]))
        if hit:
            a_ub.append(row)
            b_ub.append(cap)
    # Coverage rows: L - M_i <= 0 for every terminal i
    for t in receivers:
        row = np.zeros(n_vars)
        row[l_idx] = 1.0
        for j, (T, _) in enumerate(pairs):
            if t in T:
                row[j] = -1.0
        a_ub.append(row)
        b_ub.append(0.0)
    a_ub = np.array(a_ub)
    b_ub = np.array(b_ub)

    theta = 0.0
    best: dict = {}
    for _ in range(max_iterations):
        # maximise L - theta*(overhead + z_cost*(M - L)); a z-packet costs
        # more airtime than its payload (retries under jamming + ACKs),
        # which z_cost_factor folds into the fractional objective.
        c = np.full(n_vars, theta * z_cost_factor)
        c[l_idx] = -(1.0 + theta * z_cost_factor)
        res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
        if not res.success:  # pragma: no cover - LP is always feasible (0 works)
            break
        f = res.x
        l_val = f[l_idx]
        m_val = float(np.sum(f[:l_idx]))
        best = {pairs[j]: f[j] for j in range(len(pairs)) if f[j] > 1e-9}
        denom = overhead_packets + z_cost_factor * (m_val - l_val)
        new_theta = 0.0 if denom <= 0 else l_val / denom
        if abs(new_theta - theta) < 1e-9:
            break
        theta = new_theta
    return best


def _scatter_order(ids: Sequence[int]) -> list:
    """Deterministic time-decorrelated ordering of packet ids.

    x-ids are transmission order, so consecutive ids share a noise
    pattern; a prefix of the sorted list would sample only the earliest
    slots and inherit their channel state wholesale.  Ordering by a
    Knuth-style multiplicative hash spreads any prefix across the whole
    round, so block supports stay representative of every interference
    pattern — the property that makes rate-based budgets fair.
    """
    return sorted(ids, key=lambda i: ((i * 2654435761) & 0xFFFFFFFF, i))


def _interleaved_pool(cells: Mapping, remaining: Mapping, subset) -> list:
    """Eligible unconsumed ids for ``subset``, interleaved across cells.

    Round-robin across the eligible pattern cells (each pre-scattered in
    time, see :func:`_scatter_order`) so any prefix of the result samples
    every cell proportionally.  Balanced composition keeps a block's
    support representative of the whole reception set.
    """
    eligible = [P for P in cells if subset <= P and remaining[P]]
    queues = [_scatter_order(remaining[P]) for P in sorted(eligible, key=sorted)]
    pool: list = []
    k = 0
    while any(queues):
        for q in queues:
            if k < len(q):
                pool.append(q[k])
        k += 1
        if all(k >= len(q) for q in queues):
            break
    return pool


def _grow_support(
    pool: list, target_rows: int, subset: frozenset, budget_fn: BudgetFn
) -> tuple:
    """Shortest pool prefix whose certified budget covers ``target_rows``.

    Returns (support_ids, achievable_rows).  When even the whole pool
    cannot fund the target, returns everything it can.
    """
    if target_rows <= 0 or not pool:
        return [], 0
    total = int(np.floor(budget_fn(pool, subset) + 1e-9))
    if total < target_rows:
        return (pool, total) if total > 0 else ([], 0)
    lo, hi = 1, len(pool)
    # Budgets are monotone in the prefix, so binary-search the cut point.
    while lo < hi:
        mid = (lo + hi) // 2
        if int(np.floor(budget_fn(pool[:mid], subset) + 1e-9)) >= target_rows:
            hi = mid
        else:
            lo = mid + 1
    prefix = pool[:lo]
    achieved = int(np.floor(budget_fn(prefix, subset) + 1e-9))
    return prefix, min(achieved, target_rows)


def _emit_blocks(
    subset: frozenset, support: list, rows: int, budget_fn: BudgetFn
) -> list:
    """Build Cauchy blocks for a support, chunking at the field limit."""
    blocks: list = []
    if rows <= 0 or not support:
        return blocks
    support = sorted(support)
    if rows + len(support) <= MAX_BLOCK_POINTS:
        blocks.append(
            CombinationBlock(
                subset=subset,
                support=tuple(support),
                matrix=cauchy_matrix(rows, len(support)),
                certified_budget=rows,
            )
        )
        return blocks
    # Oversize: split the support, prorating rows by certified budget.
    remaining = support
    rows_left = rows
    while remaining and rows_left > 0:
        take = min(len(remaining), MAX_BLOCK_POINTS - min(rows_left, 64))
        piece = remaining[:take]
        certified = int(np.floor(budget_fn(piece, subset) + 1e-9))
        piece_rows = min(certified, rows_left, len(piece), MAX_BLOCK_POINTS - take)
        if piece_rows > 0:
            blocks.append(
                CombinationBlock(
                    subset=subset,
                    support=tuple(piece),
                    matrix=cauchy_matrix(piece_rows, len(piece)),
                    certified_budget=piece_rows,
                )
            )
            rows_left -= piece_rows
        remaining = remaining[take:]
    return blocks


def plan_y_allocation(
    reports: Mapping,
    budget_fn: BudgetFn,
    overhead_packets: float,
    max_subset_size: Optional[int] = None,
    z_cost_factor: float = 2.0,
) -> YAllocation:
    """Plan the phase-1 y-packet construction.

    Args:
        reports: terminal id -> set of x-ids that terminal acknowledged.
        budget_fn: certified lower bound on Eve's misses among given ids.
        overhead_packets: packet-equivalents already transmitted (the N
            x-packets, typically), used by the efficiency objective.
        max_subset_size: cap on block decodable-set size (see
            :func:`_candidate_subsets`); None means unrestricted.
        z_cost_factor: airtime multiplier for z-packets relative to
            x-packets in the efficiency objective (reliable broadcasts
            retry under jamming and trigger ACKs).

    Returns:
        A :class:`YAllocation`; possibly empty (the paper's worst case)
        when the estimator cannot certify any Eve miss.
    """
    receivers = tuple(sorted(reports))
    cells = _pattern_cells(reports)
    if not cells:
        return YAllocation(blocks=[], receivers=receivers)
    subsets = _candidate_subsets(receivers, cells, max_subset_size)
    # The LP needs budgets at cell granularity, but estimators are only
    # meaningful on slot-diverse pools (a 3-packet cell from one noise
    # pattern has no statistics).  Compute each subset's certified rate
    # once, on its full eligible pool, and prorate cells linearly; the
    # realisation step re-verifies every actual support.
    pool_rates: dict = {}
    for T in subsets:
        pool = [i for P, ids in cells.items() if T <= P for i in ids]
        pool_rates[T] = budget_fn(pool, T) / len(pool) if pool else 0.0
    pair_budgets = {
        (T, P): pool_rates[T] * len(ids)
        for T in subsets
        for P, ids in cells.items()
        if T <= P
    }
    targets = _solve_allocation_lp(
        receivers,
        cells,
        pair_budgets,
        max(overhead_packets, 1.0),
        z_cost_factor=z_cost_factor,
    )

    # Aggregate the LP solution to per-subset row totals, then realise
    # them with an integral max-flow assignment of x-ids to subsets:
    # pools overlap heavily, and greedy consumption would starve the
    # last subsets, collapsing L = min_i M_i and flooding the air with
    # z-packets (each an information gift to Eve).  The flow respects
    # every pool's true extent and shares contested ids optimally.
    demand: dict = {}
    for (T, _P), f in targets.items():
        demand[T] = demand.get(T, 0.0) + f
    id_demand = {}
    for T, f in demand.items():
        rate = pool_rates.get(T, 0.0)
        if f <= 1e-9 or rate <= 1e-9:
            continue
        id_demand[T] = int(np.ceil(f / rate))
    assignment = _assign_ids_by_flow(cells, id_demand)
    blocks: list = []
    for T in sorted(id_demand, key=lambda s: (-len(s), sorted(s))):
        support = assignment.get(T, [])
        if not support:
            continue
        rows = int(np.floor(budget_fn(support, T) + 1e-9))
        rows = min(rows, int(np.floor(demand[T] + 1e-6)), len(support))
        blocks.extend(_emit_blocks(T, support, rows, budget_fn))
    blocks = _trim_excess_rows(blocks, receivers, budget_fn)
    return YAllocation(blocks=blocks, receivers=receivers)


def solve_transport_counts(
    demands: Sequence[int],
    capacities: Sequence[int],
    allowed: Sequence[Sequence[bool]],
) -> np.ndarray:
    """Integral transportation max-flow on counts (no ids involved).

    Bipartite flow: demand node ``j`` wants up to ``demands[j]`` units,
    supply node ``k`` holds ``capacities[k]`` units, and an edge exists
    where ``allowed[j][k]`` is true.  Returns the ``(J, K)`` integer
    flow matrix of a maximum flow.

    This is the shared max-flow core of the protocol's support
    assignment: :func:`_assign_ids_by_flow` routes concrete x-ids
    through it for the per-packet session, and the batched engine's
    per-round realised planner
    (:func:`repro.theory.allocation.realised_support_flow`) runs it
    directly on reception-pattern histograms — thousands of times per
    campaign, which is why this is a dependency-free Dinic rather than
    a general graph library call (the realised planner's solve count
    made ``networkx`` graph construction the dominant campaign cost).

    Determinism matters as much as speed: node and edge order are
    fixed by the input order alone (no hashing of arbitrary keys), so
    the same inputs always yield the same — not merely equally optimal
    — flow matrix, keeping campaigns reproducible across processes.
    """
    n_demands = len(demands)
    n_supplies = len(capacities)
    out = np.zeros((n_demands, n_supplies), dtype=np.int64)
    if n_demands == 0 or n_supplies == 0:
        return out

    # Dinic on the 4-layer graph: source 0, demand nodes 1..J,
    # supply nodes J+1..J+K, sink J+K+1.  Edges are stored as parallel
    # arrays with paired reverse edges (edge i ^ 1 is the reverse).
    n_nodes = n_demands + n_supplies + 2
    source = 0
    sink = n_nodes - 1
    edge_to: list = []
    edge_cap: list = []
    adjacency: list = [[] for _ in range(n_nodes)]

    def add_edge(u: int, v: int, capacity: int) -> None:
        adjacency[u].append(len(edge_to))
        edge_to.append(v)
        edge_cap.append(capacity)
        adjacency[v].append(len(edge_to))
        edge_to.append(u)
        edge_cap.append(0)

    demand_edges = []
    for j in range(n_demands):
        add_edge(source, 1 + j, int(demands[j]))
    for k in range(n_supplies):
        add_edge(1 + n_demands + k, sink, int(capacities[k]))
    for j in range(n_demands):
        row = allowed[j]
        for k in range(n_supplies):
            if row[k]:
                demand_edges.append((j, k, len(edge_to)))
                add_edge(1 + j, 1 + n_demands + k, int(demands[j]))

    level = [0] * n_nodes
    iter_idx = [0] * n_nodes

    while True:
        # BFS: layered residual distances from the source.
        for i in range(n_nodes):
            level[i] = -1
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in adjacency[u]:
                v = edge_to[e]
                if edge_cap[e] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[sink] < 0:
            break
        for i in range(n_nodes):
            iter_idx[i] = 0

        # DFS blocking flow (recursion depth <= 4: the graph is layered
        # source -> demand -> supply -> sink); deterministic arc order.
        def augment(u: int, pushed: int) -> int:
            if u == sink:
                return pushed
            edges = adjacency[u]
            while iter_idx[u] < len(edges):
                e = edges[iter_idx[u]]
                v = edge_to[e]
                if edge_cap[e] > 0 and level[v] == level[u] + 1:
                    got = augment(v, min(pushed, edge_cap[e]))
                    if got > 0:
                        edge_cap[e] -= got
                        edge_cap[e ^ 1] += got
                        return got
                iter_idx[u] += 1
            return 0

        while augment(source, 1 << 60) > 0:
            pass

    for j, k, e in demand_edges:
        flow = edge_cap[e ^ 1]  # reverse capacity equals pushed flow
        if flow > 0:
            out[j, k] = flow
    return out


def _assign_ids_by_flow(cells: Mapping, id_demand: Mapping) -> dict:
    """Assign x-ids to subsets via integral max-flow.

    Bipartite transportation (see :func:`solve_transport_counts`):
    subset ``T`` demands ``id_demand[T]`` ids; cell ``P`` supplies
    ``|C_P|`` ids to any ``T <= P``.  The returned supports are
    disjoint (each id funds one block) and time-scattered within each
    cell (see :func:`_scatter_order`).
    """
    if not id_demand:
        return {}
    subsets = sorted(id_demand, key=lambda s: (len(s), sorted(s)))
    cell_list = list(cells)
    flow = solve_transport_counts(
        demands=[int(id_demand[T]) for T in subsets],
        capacities=[len(cells[P]) for P in cell_list],
        allowed=[[T <= P for P in cell_list] for T in subsets],
    )
    scattered = {P: _scatter_order(ids) for P, ids in cells.items()}
    cursor = {P: 0 for P in cells}
    assignment: dict = {}
    for j, T in enumerate(subsets):
        take: list = []
        for k, P in enumerate(cell_list):
            amount = int(flow[j, k])
            if amount <= 0:
                continue
            start = cursor[P]
            take.extend(scattered[P][start : start + amount])
            cursor[P] = start + amount
        if take:
            assignment[T] = take
    return assignment


def _trim_excess_rows(blocks: list, receivers: tuple, budget_fn: BudgetFn) -> list:
    """Drop y-rows that cannot raise the group secret.

    ``L = min_i M_i`` caps the secret; rows beyond what keeps every
    member at ``L`` only enlarge ``M`` — and every extra z-packet hands
    Eve a free linear equation while costing airtime.  Greedily shrink
    blocks whose members all sit strictly above the minimum.
    """
    if not blocks or not receivers:
        return blocks
    m_i = {t: sum(b.rows for b in blocks if t in b.subset) for t in receivers}
    floor_val = min(m_i.values())
    trimmed: list = []
    # Visit small subsets first: their rows serve the fewest terminals,
    # so they are the cheapest to shed.
    for b in sorted(blocks, key=lambda blk: (len(blk.subset), sorted(blk.subset))):
        removable = 0
        while removable < b.rows and all(
            m_i[t] - removable > floor_val for t in b.subset
        ):
            removable += 1
        keep = b.rows - removable
        for t in b.subset:
            m_i[t] -= removable
        if keep == 0:
            continue
        if keep == b.rows:
            trimmed.append(b)
        else:
            trimmed.append(
                CombinationBlock(
                    subset=b.subset,
                    support=b.support,
                    matrix=b.matrix.take_rows(range(keep)),
                    certified_budget=b.certified_budget,
                )
            )
    # Keep deterministic global order: large subsets first, then members.
    trimmed.sort(key=lambda blk: (-len(blk.subset), sorted(blk.subset)))
    return trimmed


# ---------------------------------------------------------------------------
# Phase 2: z and s matrices
# ---------------------------------------------------------------------------


def build_phase2_matrices(
    allocation: YAllocation, secrecy_slack: int = 0
) -> GroupCodingPlan:
    """Derive the z (public) and s (secret) combination maps.

    Splits the global y-row list into chunks of at most
    :data:`MAX_PHASE2_ROWS`; each chunk gets the top ``m_c - l_cap`` rows
    of an ``m_c x m_c`` Cauchy matrix as its z-map and the *last*
    ``l_c = max(0, l_cap - secrecy_slack)`` rows as its s-map, where
    ``l_cap`` is the minimum per-terminal count of decodable y-rows
    inside the chunk.

    ``secrecy_slack`` withholds dimensions from **both** maps: the rows
    between the z-block and the s-block are never published and never
    become secret.  Each withheld dimension absorbs one dimension of
    y-entropy deficit (an estimator that over-promised Eve's erasures)
    before the deficit can touch the secret — the concrete form of the
    paper's "terminals can be more or less conservative" knob, costing
    ``secrecy_slack`` packets of secret per chunk.
    """
    m_total = allocation.total_rows
    receivers = allocation.receivers
    if secrecy_slack < 0:
        raise ValueError("secrecy_slack must be non-negative")
    if m_total == 0 or not receivers:
        return GroupCodingPlan(chunks=[])

    # Chunk along block boundaries to keep per-terminal accounting exact.
    chunk_row_lists: list = []
    current: list = []
    offset = 0
    for b in allocation.blocks:
        if current and len(current) + b.rows > MAX_PHASE2_ROWS:
            chunk_row_lists.append(current)
            current = []
        current.extend(range(offset, offset + b.rows))
        offset += b.rows
    if current:
        chunk_row_lists.append(current)

    decodable = {t: set(allocation.rows_for_terminal(t)) for t in receivers}
    chunks: list = []
    for rows in chunk_row_lists:
        size = len(rows)
        l_cap = min(len(decodable[t].intersection(rows)) for t in receivers)
        l_c = max(0, l_cap - secrecy_slack)
        n_public = size - l_cap
        square = cauchy_matrix(size, size)
        z_matrix = (
            square.take_rows(range(n_public)) if n_public else GFMatrix.zeros(0, size)
        )
        s_matrix = (
            square.take_rows(range(size - l_c, size)) if l_c else GFMatrix.zeros(0, size)
        )
        chunks.append(
            Phase2Chunk(y_rows=tuple(rows), z_matrix=z_matrix, s_matrix=s_matrix)
        )
    return GroupCodingPlan(chunks=chunks)
