"""Erasure coding and secrecy extraction.

This package implements the combination constructions the paper defers to
its technical report [9] (arXiv:1105.4991):

* :mod:`repro.coding.mds` — a systematic MDS erasure code over GF(2^8)
  (Cauchy-parity Reed-Solomon flavour), the building block behind every
  combination family and a general-purpose substrate in its own right.
* :mod:`repro.coding.privacy` — privacy amplification: plans and builds
  the y-packet combination blocks so that the group secret is perfectly
  hidden from Eve whenever the erasure estimator's lower bounds hold, and
  builds the z/s matrices for phase 2.
* :mod:`repro.coding.reconcile` — the terminal-side decoders: reconstruct
  decodable y-packets from received x-packets, recover missing y-packets
  from public z-packets, and assemble s-packets.
"""

from repro.coding.mds import SystematicMDSCode
from repro.coding.privacy import (
    CombinationBlock,
    GroupCodingPlan,
    YAllocation,
    build_phase2_matrices,
    plan_y_allocation,
)
from repro.coding.reconcile import (
    assemble_secret,
    decodable_y_indices,
    decode_y_from_x,
    recover_missing_y,
)

__all__ = [
    "SystematicMDSCode",
    "CombinationBlock",
    "YAllocation",
    "GroupCodingPlan",
    "plan_y_allocation",
    "build_phase2_matrices",
    "decodable_y_indices",
    "decode_y_from_x",
    "recover_missing_y",
    "assemble_secret",
]
