"""Systematic MDS erasure codes over GF(2^8).

A ``(n, k)`` MDS code turns ``k`` data packets into ``n`` coded packets
such that *any* ``k`` of them suffice to reconstruct the data.  The
generator used here is ``G = [I | P]`` with ``P`` a ``k x (n-k)`` Cauchy
block; the resulting code is MDS because every square minor of a Cauchy
matrix is nonsingular.

The protocol uses this both directly (reliable dissemination in the
examples) and conceptually: the y/z/s combination families of
:mod:`repro.coding.privacy` inherit their guarantees from the same minor
properties.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import as_gf_array
from repro.gf.linalg import GFMatrix
from repro.gf.matrices import MAX_CAUCHY_POINTS, cauchy_matrix

__all__ = ["SystematicMDSCode"]


class SystematicMDSCode:
    """A systematic ``(n, k)`` MDS code over GF(256).

    Args:
        k: number of data packets.
        n: total number of coded packets (``k <= n``).

    Raises:
        ValueError: for invalid dimensions or when the Cauchy parity block
            would exceed the field size (``n > 256 - k`` is impossible at
            symbol level; callers should chunk).
    """

    def __init__(self, k: int, n: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if n < k:
            raise ValueError("n must be at least k")
        parity_cols = n - k
        if k + parity_cols > MAX_CAUCHY_POINTS:
            raise ValueError(
                f"(n={n}, k={k}) needs {k + parity_cols} field points > 256; "
                "split the data into chunks"
            )
        self.k = k
        self.n = n
        parity = cauchy_matrix(k, parity_cols) if parity_cols else GFMatrix.zeros(k, 0)
        self.generator = GFMatrix.identity(k).hstack(parity)

    def __repr__(self) -> str:
        return f"SystematicMDSCode(k={self.k}, n={self.n})"

    # -- encoding ------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``k`` payload rows into ``n`` coded rows.

        Args:
            data: uint8 array of shape (k, payload_len).

        Returns:
            uint8 array of shape (n, payload_len); the first ``k`` rows
            are the data verbatim (systematic part).
        """
        data = as_gf_array(np.atleast_2d(data))
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data rows, got {data.shape[0]}")
        coded = self.generator.transpose() @ GFMatrix(data)
        return coded.data

    # -- decoding ------------------------------------------------------

    def decode(self, received: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the data from any ``k`` received coded rows.

        Args:
            received: mapping from coded-row index (0-based, < n) to its
                payload row.  At least ``k`` entries are required; extras
                are ignored deterministically (lowest indices win).

        Returns:
            uint8 array of shape (k, payload_len).

        Raises:
            ValueError: on insufficient or inconsistent input.
        """
        if len(received) < self.k:
            raise ValueError(
                f"need at least k={self.k} coded packets, got {len(received)}"
            )
        indices = sorted(received)[: self.k]
        for idx in indices:
            if not 0 <= idx < self.n:
                raise ValueError(f"coded index {idx} out of range [0, {self.n})")
        rows = np.vstack([as_gf_array(np.atleast_1d(received[i])) for i in indices])
        # coded_row_i = (column i of generator)^T . data
        submatrix = self.generator.take_cols(indices).transpose()
        return submatrix.solve(GFMatrix(rows)).data

    def erasure_tolerance(self) -> int:
        """Number of coded-packet losses the code survives (n - k)."""
        return self.n - self.k
