"""Authenticated control channel with bootstrap + continuous refresh.

The lifecycle the paper sketches in §1-§2:

1. Terminals share a small bootstrap secret out of band when they first
   communicate ("fundamentally unavoidable").
2. Every protocol control message is authenticated with a one-time MAC
   keyed from the current pool.
3. Freshly agreed group secrets are deposited into the pool, so the
   bootstrap material is consumed once and never reused — subsequent
   secrets "do not depend in any way on the bootstrap information".

:class:`AuthenticatedChannel` models one terminal's view.  Peers stay
in sync because they consume the pool deterministically in message
order (the protocol's reliable broadcasts give all terminals the same
message sequence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auth.mac import MAC_KEY_BYTES, OneTimeMac
from repro.core.secret import GroupSecret, SecretPool

__all__ = ["AuthenticatedChannel", "BootstrapError"]


class BootstrapError(RuntimeError):
    """The pool ran out of key material (agree more secrets first)."""


@dataclass
class AuthenticatedChannel:
    """One party's authenticated-messaging state.

    Two channels constructed with the same bootstrap bytes (and fed the
    same deposits in the same order) produce/verify each other's tags.

    Attributes:
        pool: the key pool; seeded with the bootstrap secret.
        sent: number of messages authenticated so far (diagnostic).
    """

    pool: SecretPool = field(default_factory=SecretPool)
    sent: int = 0

    @classmethod
    def from_bootstrap(cls, bootstrap: bytes) -> "AuthenticatedChannel":
        if len(bootstrap) < MAC_KEY_BYTES:
            raise BootstrapError(
                f"bootstrap must provide at least {MAC_KEY_BYTES} bytes"
            )
        channel = cls()
        channel.pool.deposit_raw(bootstrap)
        return channel

    def refresh(self, secret: GroupSecret) -> None:
        """Deposit a protocol-agreed secret into the key pool."""
        self.pool.deposit(secret)

    def _next_mac(self) -> OneTimeMac:
        if self.pool.available_bytes < MAC_KEY_BYTES:
            raise BootstrapError(
                "key pool exhausted: run the secret-agreement protocol"
            )
        return OneTimeMac(self.pool.consume(MAC_KEY_BYTES))

    def authenticate(self, message: bytes) -> bytes:
        """Tag a message, consuming one key; returns the tag."""
        mac = self._next_mac()
        self.sent += 1
        return mac.tag(message)

    def verify_next(self, message: bytes, tag: bytes) -> bool:
        """Verify the next message in sequence, consuming one key.

        Key consumption happens regardless of the verdict: a forged
        message must burn the key it targeted, or the attacker could
        retry against the same key.
        """
        mac = self._next_mac()
        return mac.verify(message, tag)

    @property
    def messages_remaining(self) -> int:
        """How many more messages the current pool can authenticate."""
        return self.pool.available_bytes // MAC_KEY_BYTES
