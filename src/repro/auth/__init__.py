"""Active-adversary extension: authentication from pooled secrets.

The HotNets paper evaluates a passive Eve and defers active-attack
defences to its technical report: terminals share a small *bootstrap*
secret when they first meet, authenticate protocol control messages
with it, and replace it with protocol-generated secrets thereafter —
so no long-lived key material exists for an attacker to steal.

This package implements that flavour with information-theoretic
primitives (no computational assumptions, matching the paper's threat
philosophy):

* :mod:`repro.auth.mac` — one-time Carter-Wegman MAC over GF(2^8)
  (polynomial universal hashing + one-time pad), forgery probability
  bounded by ``message_blocks / 256`` per tag regardless of the
  attacker's compute.
* :mod:`repro.auth.bootstrap` — an authenticated channel that draws
  one-time keys from a :class:`repro.core.secret.SecretPool` and
  refreshes the pool from protocol output.
"""

from repro.auth.bootstrap import AuthenticatedChannel, BootstrapError
from repro.auth.mac import MAC_KEY_BYTES, OneTimeMac, forgery_bound

__all__ = [
    "OneTimeMac",
    "MAC_KEY_BYTES",
    "forgery_bound",
    "AuthenticatedChannel",
    "BootstrapError",
]
