"""One-time Carter-Wegman MAC over GF(2^8).

Unconditionally secure authentication: the tag is a polynomial hash of
the message evaluated at a secret point, masked with a one-time pad::

    tag_j = m_1 * k^(B)  + m_2 * k^(B-1) + ... + m_B * k  + r_j

(symbol-wise over GF(256), with independent evaluation/mask symbols per
tag position).  For a single use of the key, an attacker who sees
(message, tag) and forges a different message succeeds with probability
at most ``B / 256`` per tag symbol — ``(B/256)^t`` for a t-symbol tag —
*independent of computational power*, which is the property that makes
it the right companion to an information-theoretic secret-agreement
protocol.

Keys are consumed per message: authenticating k messages costs
``k * MAC_KEY_BYTES`` bytes of pool secret.  The evaluation point is
drawn per message too (strict one-time discipline keeps the analysis
simple and the bound airtight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gf.field import gf_add, gf_mul, gf_poly_eval

__all__ = ["OneTimeMac", "MAC_KEY_BYTES", "TAG_SYMBOLS", "forgery_bound"]

#: Tag length in GF(256) symbols; forgery probability ~ (B/256)^4.
TAG_SYMBOLS = 4

#: Bytes of key consumed per authenticated message: one evaluation
#: point and one pad symbol per tag symbol.
MAC_KEY_BYTES = 2 * TAG_SYMBOLS


def forgery_bound(message_bytes: int) -> float:
    """Upper bound on one-shot forgery probability for a message size."""
    if message_bytes < 0:
        raise ValueError("message size must be non-negative")
    blocks = max(message_bytes, 1)
    per_symbol = min(blocks / 256.0, 1.0)
    return per_symbol**TAG_SYMBOLS


@dataclass(frozen=True)
class OneTimeMac:
    """A one-time MAC instance bound to one 8-byte key.

    Attributes:
        key: ``MAC_KEY_BYTES`` secret bytes — the first ``TAG_SYMBOLS``
            are evaluation points, the rest one-time pad symbols.
    """

    key: bytes

    def __post_init__(self) -> None:
        if len(self.key) != MAC_KEY_BYTES:
            raise ValueError(f"key must be exactly {MAC_KEY_BYTES} bytes")

    def tag(self, message: bytes) -> bytes:
        """Authenticate ``message``; returns a TAG_SYMBOLS-byte tag."""
        coeffs = np.frombuffer(message, dtype=np.uint8)
        if coeffs.size == 0:
            coeffs = np.zeros(1, dtype=np.uint8)
        out = bytearray()
        for j in range(TAG_SYMBOLS):
            point = self.key[j]
            pad = self.key[TAG_SYMBOLS + j]
            if point == 0:
                # gf_poly_eval at 0 keeps only the constant term; shift
                # to the multiplicative group to keep every byte binding.
                point = 1
            value = gf_poly_eval(coeffs, point)
            # Bind the length so extensions cannot be forged.
            value = gf_add(gf_mul(value, point), len(message) % 256)
            out.append(gf_add(value, pad))
        return bytes(out)

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-shape verification (recompute and compare)."""
        if len(tag) != TAG_SYMBOLS:
            return False
        expected = self.tag(message)
        # Bitwise accumulate to avoid early exit on first mismatch.
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        return diff == 0
