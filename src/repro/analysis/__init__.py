"""Experiment campaigns and result summarisation.

* :mod:`repro.analysis.experiments` — run the paper's §4 campaign: one
  experiment (full leader rotation) per placement, for each group size.
* :mod:`repro.analysis.stats` — the order statistics Figure 2 plots:
  minimum, mean, the "95% of experiments" level and the median.
* :mod:`repro.analysis.report` — render results as the ASCII tables the
  benchmarks print.
"""

from repro.analysis.experiments import (
    CampaignConfig,
    CampaignResult,
    ExperimentRecord,
    campaign_sweep_manifest,
    campaign_work_items,
    experiment_store_key,
    placement_label,
    placement_loss_specs,
    run_campaign,
    run_placement_experiment,
    run_placement_experiment_batched,
)
from repro.analysis.stats import (
    ReliabilityAccumulator,
    ReliabilitySummary,
    SecrecyAccumulator,
    SecrecySummary,
    StreamingMoments,
    ValueCountAccumulator,
    summarize_reliability,
)
from repro.analysis.report import (
    render_figure1_table,
    render_figure2_table,
    render_headline_table,
    render_secrecy_table,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ExperimentRecord",
    "run_campaign",
    "run_placement_experiment",
    "run_placement_experiment_batched",
    "placement_loss_specs",
    "experiment_store_key",
    "campaign_sweep_manifest",
    "campaign_work_items",
    "placement_label",
    "ReliabilitySummary",
    "summarize_reliability",
    "StreamingMoments",
    "ValueCountAccumulator",
    "ReliabilityAccumulator",
    "SecrecyAccumulator",
    "SecrecySummary",
    "render_figure1_table",
    "render_figure2_table",
    "render_secrecy_table",
    "render_headline_table",
]
