"""Campaign runner: the paper's §4 experiment design, end to end.

An *experiment* is one full protocol execution (leader rotation
included) for one placement of n terminals + Eve on the testbed grid.
A *campaign* runs one experiment per placement, per group size, and
feeds the reliability/efficiency populations to
:mod:`repro.analysis.stats` — exactly how Figure 2 and the headline
efficiency number were produced.

Determinism: every experiment derives its RNG seed from (campaign seed,
placement, n), so campaigns are reproducible and individually
re-runnable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.estimator import EveErasureEstimator
from repro.core.rotation import ExperimentResult, run_experiment
from repro.core.session import SessionConfig
from repro.testbed.deployment import Testbed
from repro.testbed.placements import (
    Placement,
    enumerate_placements,
    sample_placements,
)

__all__ = [
    "CampaignConfig",
    "ExperimentRecord",
    "CampaignResult",
    "run_placement_experiment",
    "run_campaign",
]

#: Builds a fresh estimator for a placement (estimators may use the
#: candidate-cell geometry, so they are placement-specific).
EstimatorFactory = Callable[[Testbed, Placement], EveErasureEstimator]


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-wide parameters.

    Attributes:
        session: protocol configuration shared by all experiments.
        seed: master seed; per-experiment seeds derive from it.
        max_placements_per_n: cap on placements per group size (None
            runs the full 9*C(8,n) enumeration like the paper; smaller
            values sample uniformly for quick runs).
        group_sizes: the n values to sweep (paper: 3..8).
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    seed: int = 2012
    max_placements_per_n: Optional[int] = None
    group_sizes: tuple = (3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class ExperimentRecord:
    """One experiment's outcome, with enough detail for every figure."""

    n_terminals: int
    placement: Placement
    efficiency: float
    reliability: float
    secret_bits: int
    transmitted_bits: int

    @property
    def secret_kbps_at_1mbps(self) -> float:
        return self.efficiency * 1e3


@dataclass
class CampaignResult:
    """All experiments of a campaign, grouped by group size."""

    records: list = field(default_factory=list)

    def for_n(self, n: int) -> list:
        return [r for r in self.records if r.n_terminals == n]

    def reliabilities(self, n: int) -> list:
        return [r.reliability for r in self.for_n(n)]

    def efficiencies(self, n: int) -> list:
        return [r.efficiency for r in self.for_n(n)]

    def group_sizes(self) -> list:
        return sorted({r.n_terminals for r in self.records})


def _experiment_seed(seed: int, placement: Placement, n: int) -> int:
    key = (seed, n, placement.eve_cell) + tuple(placement.terminal_cells)
    return abs(hash(key)) % (2**63)


def run_placement_experiment(
    testbed: Testbed,
    placement: Placement,
    estimator_factory: EstimatorFactory,
    config: CampaignConfig,
) -> ExperimentRecord:
    """Run one experiment (full rotation) on one placement."""
    rng = np.random.default_rng(
        _experiment_seed(config.seed, placement, placement.n_terminals)
    )
    medium, names = testbed.build_medium(placement, rng)
    estimator = estimator_factory(testbed, placement)
    result: ExperimentResult = run_experiment(
        medium, names, estimator, rng, config=config.session
    )
    return ExperimentRecord(
        n_terminals=placement.n_terminals,
        placement=placement,
        efficiency=result.efficiency,
        reliability=result.reliability,
        secret_bits=result.secret_bits,
        transmitted_bits=result.metrics.transmitted_bits,
    )


def run_campaign(
    testbed: Testbed,
    estimator_factory: EstimatorFactory,
    config: Optional[CampaignConfig] = None,
    progress: Optional[Callable[[int, Placement], None]] = None,
) -> CampaignResult:
    """Run the full campaign across group sizes and placements.

    Args:
        testbed: the deployment.
        estimator_factory: builds the per-placement estimator.
        config: campaign parameters.
        progress: optional callback invoked before each experiment.
    """
    config = config if config is not None else CampaignConfig()
    result = CampaignResult()
    sample_rng = np.random.default_rng(config.seed)
    for n in config.group_sizes:
        if config.max_placements_per_n is None:
            placements: Sequence[Placement] = list(enumerate_placements(n))
        else:
            placements = sample_placements(
                n, config.max_placements_per_n, sample_rng
            )
        for placement in placements:
            if progress is not None:
                progress(n, placement)
            result.records.append(
                run_placement_experiment(
                    testbed, placement, estimator_factory, config
                )
            )
    return result
