"""Campaign runner: the paper's §4 experiment design, end to end.

An *experiment* is one full protocol execution (leader rotation
included) for one placement of n terminals + Eve on the testbed grid.
A *campaign* runs one experiment per placement, per group size, and
feeds the reliability/efficiency populations to
:mod:`repro.analysis.stats` — exactly how Figure 2 and the headline
efficiency number were produced.

Two engines run the same campaign design:

* ``engine="packet"`` — the ground-truth oracle: every round goes
  through :class:`~repro.core.session.ProtocolSession`, packet by
  packet, retry by retry.
* ``engine="batched"`` — the :mod:`repro.sim` Monte-Carlo engine: each
  placement is probed once for its per-link, interference-averaged
  loss probabilities, then every leader's rounds are simulated as one
  vectorised batch.  Efficiency uses the idealised x+z accounting
  (control traffic excluded), so batched records trade the ledger's
  bit-exactness for two to three orders of magnitude of throughput.

Determinism: every experiment derives its RNG seed from (campaign seed,
placement, n), so campaigns are reproducible and individually
re-runnable — with either engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.estimator import EveErasureEstimator
from repro.core.rotation import ExperimentResult, run_experiment
from repro.core.session import SessionConfig
from repro.sim.engine import BatchedRoundEngine
from repro.sim.spec import EstimatorSpec, MatrixLossSpec, Scenario
from repro.testbed.deployment import Testbed
from repro.testbed.placements import (
    Placement,
    enumerate_placements,
    sample_placements,
)

__all__ = [
    "CampaignConfig",
    "ExperimentRecord",
    "CampaignResult",
    "run_placement_experiment",
    "run_placement_experiment_batched",
    "placement_loss_specs",
    "run_campaign",
]

#: Builds a fresh estimator for a placement (estimators may use the
#: candidate-cell geometry, so they are placement-specific).
EstimatorFactory = Callable[[Testbed, Placement], EveErasureEstimator]


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-wide parameters.

    Attributes:
        session: protocol configuration shared by all experiments.
        seed: master seed; per-experiment seeds derive from it.
        max_placements_per_n: cap on placements per group size (None
            runs the full 9*C(8,n) enumeration like the paper; smaller
            values sample uniformly for quick runs).
        group_sizes: the n values to sweep (paper: 3..8).
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    seed: int = 2012
    max_placements_per_n: Optional[int] = None
    group_sizes: tuple = (3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class ExperimentRecord:
    """One experiment's outcome, with enough detail for every figure."""

    n_terminals: int
    placement: Placement
    efficiency: float
    reliability: float
    secret_bits: int
    transmitted_bits: int

    @property
    def secret_kbps_at_1mbps(self) -> float:
        return self.efficiency * 1e3


@dataclass
class CampaignResult:
    """All experiments of a campaign, grouped by group size."""

    records: list = field(default_factory=list)

    def for_n(self, n: int) -> list:
        return [r for r in self.records if r.n_terminals == n]

    def reliabilities(self, n: int) -> list:
        return [r.reliability for r in self.for_n(n)]

    def efficiencies(self, n: int) -> list:
        return [r.efficiency for r in self.for_n(n)]

    def group_sizes(self) -> list:
        return sorted({r.n_terminals for r in self.records})


def _experiment_seed(seed: int, placement: Placement, n: int) -> int:
    key = (seed, n, placement.eve_cell) + tuple(placement.terminal_cells)
    return abs(hash(key)) % (2**63)


def run_placement_experiment(
    testbed: Testbed,
    placement: Placement,
    estimator_factory: EstimatorFactory,
    config: CampaignConfig,
) -> ExperimentRecord:
    """Run one experiment (full rotation) on one placement."""
    rng = np.random.default_rng(
        _experiment_seed(config.seed, placement, placement.n_terminals)
    )
    medium, names = testbed.build_medium(placement, rng)
    estimator = estimator_factory(testbed, placement)
    result: ExperimentResult = run_experiment(
        medium, names, estimator, rng, config=config.session
    )
    return ExperimentRecord(
        n_terminals=placement.n_terminals,
        placement=placement,
        efficiency=result.efficiency,
        reliability=result.reliability,
        secret_bits=result.secret_bits,
        transmitted_bits=result.metrics.transmitted_bits,
    )


def placement_loss_specs(
    testbed: Testbed,
    placement: Placement,
    rng: np.random.Generator,
    probe_trials: int = 120,
) -> list:
    """Per-leader :class:`~repro.sim.spec.MatrixLossSpec`s for a placement.

    Probes every directed link once (Monte-Carlo over fading, averaged
    across the rotating interference patterns) and returns one spec per
    leader, links ordered as the batched engine expects: the other
    terminals in placement order, then Eve.
    """
    probe = testbed.link_loss_probe(placement, rng, trials=probe_trials)
    n_patterns = testbed.interference.n_patterns()
    names = [f"T{i}" for i in range(placement.n_terminals)]

    def mean_loss(src: str, dst: str) -> float:
        return float(
            np.mean([probe[(src, dst, k)] for k in range(n_patterns)])
        )

    specs = []
    for leader in names:
        receivers = [t for t in names if t != leader]
        probs = tuple(mean_loss(leader, dst) for dst in receivers) + (
            mean_loss(leader, "eve"),
        )
        specs.append(MatrixLossSpec(probabilities=probs))
    return specs


def run_placement_experiment_batched(
    testbed: Testbed,
    placement: Placement,
    estimator_spec: EstimatorSpec,
    config: CampaignConfig,
    rounds_per_leader: int = 8,
    probe_trials: int = 120,
) -> ExperimentRecord:
    """Batched counterpart of :func:`run_placement_experiment`.

    One experiment still rotates the leader across every terminal, but
    each leader's rounds run as a single vectorised batch on the
    probed link-loss matrix.  Reliability aggregates like the ledger
    metric (secret-length-weighted); efficiency uses the idealised
    x+z accounting.
    """
    rng = np.random.default_rng(
        _experiment_seed(config.seed, placement, placement.n_terminals)
    )
    session = config.session
    specs = placement_loss_specs(
        testbed, placement, rng, probe_trials=probe_trials
    )
    total_secret = 0.0
    total_hidden = 0.0
    total_secret_bits = 0
    total_transmitted = 0.0
    for loss_spec in specs:
        scenario = Scenario(
            n_terminals=placement.n_terminals,
            loss=loss_spec,
            estimator=estimator_spec,
            n_x_packets=session.n_x_packets,
            rounds=rounds_per_leader,
            payload_bytes=session.payload_bytes,
            z_cost_factor=session.z_cost_factor,
            secrecy_slack=session.secrecy_slack,
            max_subset_size=session.max_subset_size,
        )
        batch = BatchedRoundEngine(scenario, rng=rng).run()
        total_secret += float(batch.secret_packets.sum())
        total_hidden += float(
            (batch.reliability * batch.secret_packets).sum()
        )
        total_secret_bits += batch.secret_bits
        total_transmitted += float(
            (session.n_x_packets + batch.public_packets).sum()
        )
    reliability = 1.0 if total_secret <= 0 else total_hidden / total_secret
    transmitted_bits = int(total_transmitted * session.payload_bytes * 8)
    eff = 0.0 if transmitted_bits == 0 else total_secret_bits / transmitted_bits
    return ExperimentRecord(
        n_terminals=placement.n_terminals,
        placement=placement,
        efficiency=eff,
        reliability=reliability,
        secret_bits=total_secret_bits,
        transmitted_bits=transmitted_bits,
    )


def run_campaign(
    testbed: Testbed,
    estimator_factory: Optional[EstimatorFactory] = None,
    config: Optional[CampaignConfig] = None,
    progress: Optional[Callable[[int, Placement], None]] = None,
    engine: str = "packet",
    estimator_spec: Optional[EstimatorSpec] = None,
    rounds_per_leader: int = 8,
    probe_trials: int = 120,
) -> CampaignResult:
    """Run the full campaign across group sizes and placements.

    Args:
        testbed: the deployment.
        estimator_factory: builds the per-placement estimator (packet
            engine; may be None when ``engine="batched"``).
        config: campaign parameters.
        progress: optional callback invoked before each experiment.
        engine: ``"packet"`` (per-packet ground truth) or ``"batched"``
            (the :mod:`repro.sim` engine).
        estimator_spec: declarative estimator policy (batched engine).
        rounds_per_leader: batch size per leader (batched engine).
        probe_trials: link-probe Monte-Carlo trials (batched engine).
    """
    if engine not in ("packet", "batched"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "packet":
        if estimator_factory is None:
            raise ValueError("the packet engine needs an estimator_factory")
        if estimator_spec is not None:
            raise ValueError(
                "estimator_spec belongs to the batched engine; the packet "
                "engine would silently ignore it"
            )
    else:
        if estimator_spec is None:
            raise ValueError("the batched engine needs an estimator_spec")
        if estimator_factory is not None:
            raise ValueError(
                "estimator_factory belongs to the packet engine; the batched "
                "engine would silently ignore it"
            )
    config = config if config is not None else CampaignConfig()
    result = CampaignResult()
    sample_rng = np.random.default_rng(config.seed)
    for n in config.group_sizes:
        if config.max_placements_per_n is None:
            placements: Sequence[Placement] = list(enumerate_placements(n))
        else:
            placements = sample_placements(
                n, config.max_placements_per_n, sample_rng
            )
        for placement in placements:
            if progress is not None:
                progress(n, placement)
            if engine == "packet":
                record = run_placement_experiment(
                    testbed, placement, estimator_factory, config
                )
            else:
                record = run_placement_experiment_batched(
                    testbed,
                    placement,
                    estimator_spec,
                    config,
                    rounds_per_leader=rounds_per_leader,
                    probe_trials=probe_trials,
                )
            result.records.append(record)
    return result
