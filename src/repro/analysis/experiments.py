"""Campaign runner: the paper's §4 experiment design, end to end.

An *experiment* is one full protocol execution (leader rotation
included) for one placement of n terminals + Eve on the testbed grid.
A *campaign* runs one experiment per placement, per group size, and
feeds the reliability/efficiency populations to
:mod:`repro.analysis.stats` — exactly how Figure 2 and the headline
efficiency number were produced.

Two engines run the same campaign design:

* ``engine="packet"`` — the ground-truth oracle: every round goes
  through :class:`~repro.core.session.ProtocolSession`, packet by
  packet, retry by retry.
* ``engine="batched"`` — the :mod:`repro.sim` Monte-Carlo engine: each
  placement's per-pattern link losses are computed analytically
  (:mod:`repro.testbed.pertable` — no probe Monte-Carlo) and fed to a
  slot-aware :class:`~repro.sim.spec.ScheduleLossSpec`, then every
  leader's rounds are simulated as one vectorised batch.  Efficiency
  uses the idealised x+z accounting (control traffic excluded), so
  batched records trade the ledger's bit-exactness for two to three
  orders of magnitude of throughput — while keeping the rotating
  schedule's burstiness that the protocol's secrecy budget feeds on.

Determinism: every experiment derives its RNG stream from a
``SeedSequence`` keyed on (campaign seed, n, placement), so campaigns
are reproducible, individually re-runnable, and — because placements
are independent — shardable across workers with bit-identical results
(``max_workers``), with either engine.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.estimator import EveErasureEstimator
from repro.core.rotation import ExperimentResult, run_experiment
from repro.core.session import SessionConfig
from repro.sim.campaign import _as_store, shard_map
from repro.sim.engine import BatchedRoundEngine
from repro.store.fingerprint import fingerprint
from repro.sim.spec import (
    AdversarySpec,
    EstimatorSpec,
    MatrixLossSpec,
    Scenario,
)
from repro.testbed.deployment import Testbed
from repro.testbed.pertable import placement_schedule_specs
from repro.testbed.placements import (
    Placement,
    enumerate_placements,
    sample_placements,
)

__all__ = [
    "CampaignConfig",
    "ExperimentRecord",
    "CampaignResult",
    "run_placement_experiment",
    "run_placement_experiment_batched",
    "placement_loss_specs",
    "run_campaign",
    "experiment_store_key",
    "campaign_work_items",
    "campaign_sweep_manifest",
    "placement_label",
]

#: Builds a fresh estimator for a placement (estimators may use the
#: candidate-cell geometry, so they are placement-specific).
EstimatorFactory = Callable[[Testbed, Placement], EveErasureEstimator]


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-wide parameters.

    Attributes:
        session: protocol configuration shared by all experiments.
        seed: master seed; per-experiment seeds derive from it.
        max_placements_per_n: cap on placements per group size (None
            runs the full 9*C(8,n) enumeration like the paper; smaller
            values sample uniformly for quick runs).
        group_sizes: the n values to sweep (paper: 3..8).
        eve_extra_cells: additional antenna cells for a multi-antenna
            Eve (the paper's §6 threat model); both engines model her
            as capturing a packet when *any* antenna does.  Placements
            whose terminals occupy one of these cells are skipped —
            every node keeps the one-cell-diagonal minimum distance —
            so sweeps stay comparable across engines.
    """

    session: SessionConfig = field(default_factory=SessionConfig)
    seed: int = 2012
    max_placements_per_n: Optional[int] = None
    group_sizes: tuple = (3, 4, 5, 6, 7, 8)
    eve_extra_cells: tuple = ()


@dataclass(frozen=True)
class ExperimentRecord:
    """One experiment's outcome, with enough detail for every figure.

    ``min_entropy_bits`` is the measured residual min-entropy of the
    experiment's secret pool given everything Eve observed, and
    ``leaked_bits`` its complement (``secret_bits - min_entropy_bits``)
    — the measured-secrecy contract.  Records stored before these
    fields existed reconstruct them from the reliability aggregate
    (``reliability * secret_bits``), which is the same quantity up to
    the rounding of the stored quotient.
    """

    n_terminals: int
    placement: Placement
    efficiency: float
    reliability: float
    secret_bits: int
    transmitted_bits: int
    min_entropy_bits: Optional[float] = None
    leaked_bits: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_entropy_bits is None:
            hidden = (
                0.0
                if self.secret_bits <= 0 or math.isnan(self.reliability)
                else self.reliability * self.secret_bits
            )
            object.__setattr__(self, "min_entropy_bits", hidden)
        if self.leaked_bits is None:
            object.__setattr__(
                self,
                "leaked_bits",
                max(float(self.secret_bits) - self.min_entropy_bits, 0.0),
            )

    @property
    def secret_kbps_at_1mbps(self) -> float:
        return self.efficiency * 1e3


@dataclass
class CampaignResult:
    """All experiments of a campaign, grouped by group size."""

    records: list = field(default_factory=list)

    def for_n(self, n: int) -> list:
        return [r for r in self.records if r.n_terminals == n]

    def reliabilities(self, n: int) -> list:
        """Reliability population for Figure 2, NaN records excluded.

        An experiment that produced no secret has no reliability (the
        record carries NaN, not a flattering 1.0); including it would
        bias the campaign mean, so the aggregate views drop it.
        """
        return [
            r.reliability
            for r in self.for_n(n)
            if not math.isnan(r.reliability)
        ]

    def efficiencies(self, n: int) -> list:
        return [r.efficiency for r in self.for_n(n)]

    def secrecy_summary(self, n: int):
        """Measured-secrecy aggregate for one group size (the secrecy
        curve beside Figure 2); zero-secret experiments count as
        excluded, like the NaN-reliability convention."""
        from repro.analysis.stats import SecrecyAccumulator

        acc = SecrecyAccumulator()
        for record in self.for_n(n):
            acc.add_record(record)
        return acc.summary(n)

    def group_sizes(self) -> list:
        return sorted({r.n_terminals for r in self.records})


def _experiment_seed_sequence(
    seed: int, placement: Placement, n: int
) -> np.random.SeedSequence:
    """Per-experiment RNG stream, keyed like the sharded batched runner.

    ``SeedSequence(entropy=seed, spawn_key=...)`` mixes the campaign
    seed with the placement coordinates through splitmix-style hashing:
    deterministic across processes (no ``PYTHONHASHSEED`` dependence)
    and collision-resistant where the old ``abs(hash(key)) % 2**63``
    derivation folded sign pairs into colliding streams.
    """
    spawn_key = (n, placement.eve_cell) + tuple(placement.terminal_cells)
    return np.random.SeedSequence(entropy=seed, spawn_key=spawn_key)


def run_placement_experiment(
    testbed: Testbed,
    placement: Placement,
    estimator_factory: EstimatorFactory,
    config: CampaignConfig,
) -> ExperimentRecord:
    """Run one experiment (full rotation) on one placement."""
    rng = np.random.default_rng(
        _experiment_seed_sequence(config.seed, placement, placement.n_terminals)
    )
    medium, names = testbed.build_medium(
        placement, rng, eve_extra_cells=config.eve_extra_cells
    )
    estimator = estimator_factory(testbed, placement)
    result: ExperimentResult = run_experiment(
        medium, names, estimator, rng, config=config.session
    )
    # Campaign-record convention, shared with the batched engine: an
    # experiment that produced no secret has no reliability (NaN; the
    # session-level metric keeps its own 0-bit convention of 1.0).
    reliability = (
        float("nan") if result.secret_bits <= 0 else result.reliability
    )
    # Measured secrecy, taken from the per-round oracle reports rather
    # than back-computed from the reliability quotient: exact dims.
    hidden_dims = sum(r.leakage.hidden_dims for r in result.rounds)
    min_entropy_bits = float(hidden_dims * config.session.payload_bytes * 8)
    return ExperimentRecord(
        n_terminals=placement.n_terminals,
        placement=placement,
        efficiency=result.efficiency,
        reliability=reliability,
        secret_bits=result.secret_bits,
        transmitted_bits=result.metrics.transmitted_bits,
        min_entropy_bits=min_entropy_bits,
        leaked_bits=max(float(result.secret_bits) - min_entropy_bits, 0.0),
    )


def placement_loss_specs(
    testbed: Testbed,
    placement: Placement,
    rng: np.random.Generator,
    probe_trials: int = 120,
) -> list:
    """Legacy probe bridge: pattern-averaged IID specs (diagnostics only).

    Probes every directed link by Monte-Carlo and *averages loss across
    the rotating interference patterns* into per-leader
    :class:`~repro.sim.spec.MatrixLossSpec`s — erasing the slot-level
    burstiness the schedule engineers.  The campaign path now uses the
    analytic slot-aware bridge
    (:func:`repro.testbed.pertable.placement_schedule_specs`); this
    survives for cross-checking the marginals against it.
    """
    probe = testbed.link_loss_probe(placement, rng, trials=probe_trials)
    n_patterns = testbed.interference.n_patterns()
    names = [f"T{i}" for i in range(placement.n_terminals)]

    def mean_loss(src: str, dst: str) -> float:
        return float(
            np.mean([probe[(src, dst, k)] for k in range(n_patterns)])
        )

    specs = []
    for leader in names:
        receivers = [t for t in names if t != leader]
        probs = tuple(mean_loss(leader, dst) for dst in receivers) + (
            mean_loss(leader, "eve"),
        )
        specs.append(MatrixLossSpec(probabilities=probs))
    return specs


def run_placement_experiment_batched(
    testbed: Testbed,
    placement: Placement,
    estimator_spec: EstimatorSpec,
    config: CampaignConfig,
    rounds_per_leader: int = 8,
) -> ExperimentRecord:
    """Batched counterpart of :func:`run_placement_experiment`.

    One experiment still rotates the leader across every terminal, but
    each leader's rounds run as a single vectorised batch on the
    analytic slot-aware loss schedule
    (:func:`repro.testbed.pertable.placement_schedule_specs`), so the
    rotating interference's per-pattern burstiness reaches the
    subset-lattice accounting.  Reliability aggregates like the ledger
    metric (secret-length-weighted) and is NaN when the experiment
    produced no secret at all — campaign aggregates exclude those
    records instead of counting them as perfectly reliable.  Efficiency
    uses the idealised x+z accounting.
    """
    rng = np.random.default_rng(
        _experiment_seed_sequence(config.seed, placement, placement.n_terminals)
    )
    session = config.session
    specs = placement_schedule_specs(
        testbed,
        placement,
        rng,
        payload_bytes=session.payload_bytes,
        eve_extra_cells=config.eve_extra_cells,
    )
    adversary = AdversarySpec(antennas=1 + len(config.eve_extra_cells))
    total_secret = 0.0
    total_hidden = 0.0
    total_secret_bits = 0
    total_transmitted = 0.0
    for loss_spec in specs:
        scenario = Scenario(
            n_terminals=placement.n_terminals,
            loss=loss_spec,
            adversary=adversary,
            estimator=estimator_spec,
            n_x_packets=session.n_x_packets,
            rounds=rounds_per_leader,
            payload_bytes=session.payload_bytes,
            z_cost_factor=session.z_cost_factor,
            secrecy_slack=session.secrecy_slack,
            max_subset_size=session.max_subset_size,
        )
        batch = BatchedRoundEngine(scenario, rng=rng).run()
        total_secret += float(batch.secret_packets.sum())
        total_hidden += float(batch.hidden_dims.sum())
        total_secret_bits += batch.secret_bits
        total_transmitted += float(
            (session.n_x_packets + batch.public_packets).sum()
        )
    reliability = (
        float("nan") if total_secret <= 0 else total_hidden / total_secret
    )
    transmitted_bits = int(total_transmitted * session.payload_bytes * 8)
    eff = 0.0 if transmitted_bits == 0 else total_secret_bits / transmitted_bits
    min_entropy_bits = total_hidden * session.payload_bytes * 8
    return ExperimentRecord(
        n_terminals=placement.n_terminals,
        placement=placement,
        efficiency=eff,
        reliability=reliability,
        secret_bits=total_secret_bits,
        transmitted_bits=transmitted_bits,
        min_entropy_bits=min_entropy_bits,
        leaked_bits=max(float(total_secret_bits) - min_entropy_bits, 0.0),
    )


def experiment_store_key(
    testbed: Testbed,
    config: CampaignConfig,
    engine: str,
    estimator,
    placement: Placement,
    rounds_per_leader: Optional[int] = None,
) -> str:
    """Content-hashed store shard key for one placement experiment.

    Everything that determines the experiment's outcome is in the hash:
    the testbed configuration, the session/campaign parameters, the
    engine, the estimator (a declarative spec, or a factory identified
    by its dotted qualname plus instance state — factories should be
    module-level callables so the identity is stable), the placement,
    and — batched engine only — the per-leader batch size.  Reruns of
    the same campaign dedupe onto the same shard; any change that could
    alter the result changes the key.
    """
    return fingerprint(
        {
            "kind": "testbed-experiment",
            "engine": engine,
            "seed": config.seed,
            "session": config.session,
            "testbed": testbed.config,
            "eve_extra_cells": tuple(config.eve_extra_cells),
            "estimator": estimator,
            "placement": placement,
            "rounds_per_leader": (
                rounds_per_leader if engine == "batched" else None
            ),
        }
    )


def placement_label(placement: Placement) -> str:
    """Human-readable name for one placement (error messages, status)."""
    return (
        f"placement(n={placement.n_terminals}, "
        f"eve={placement.eve_cell}, cells={placement.terminal_cells})"
    )


def campaign_work_items(config: CampaignConfig) -> list:
    """The campaign's work list: ``(n, placement)`` pairs, in sweep order.

    Deterministic for a given config (the sampler is seeded by
    ``config.seed``), which is what lets independent worker processes
    rebuild the identical list and agree with a saved manifest.
    """
    sample_rng = np.random.default_rng(config.seed)
    blocked = set(config.eve_extra_cells)
    work: list = []
    for n in config.group_sizes:
        if config.max_placements_per_n is None:
            placements: Sequence[Placement] = list(enumerate_placements(n))
        else:
            placements = sample_placements(
                n, config.max_placements_per_n, sample_rng
            )
        work.extend(
            (n, placement)
            for placement in placements
            if blocked.isdisjoint(placement.terminal_cells)
        )
    return work


def campaign_sweep_manifest(
    testbed: Testbed,
    name: str,
    config: Optional[CampaignConfig] = None,
    engine: str = "packet",
    estimator_factory: Optional[EstimatorFactory] = None,
    estimator_spec: Optional[EstimatorSpec] = None,
    rounds_per_leader: int = 8,
):
    """Describe a testbed campaign as a :class:`~repro.store.SweepManifest`.

    One entry per placement experiment, in campaign order: the
    experiment's content-hashed shard key
    (:func:`experiment_store_key` — engine, estimator identity and
    session sizing all inside the hash) plus the encoded placement.
    Built, not saved; ``manifest.save(store)`` persists it atomically
    next to the shards.
    """
    from repro.store.manifest import ManifestEntry, SweepManifest
    from repro.store.records import encode_spec

    if engine not in ("packet", "batched"):
        raise ValueError(f"unknown engine {engine!r}")
    config = config if config is not None else CampaignConfig()
    identity = estimator_spec if engine == "batched" else estimator_factory
    if identity is None:
        raise ValueError(
            "the packet engine needs an estimator_factory"
            if engine == "packet"
            else "the batched engine needs an estimator_spec"
        )
    entries = tuple(
        ManifestEntry(
            key=experiment_store_key(
                testbed, config, engine, identity, placement, rounds_per_leader
            ),
            spec=encode_spec(placement),
            label=placement_label(placement),
        )
        for _, placement in campaign_work_items(config)
    )
    return SweepManifest(
        name=name,
        entries=entries,
        kind="testbed-campaign",
        meta={
            "engine": engine,
            "seed": config.seed,
            "group_sizes": list(config.group_sizes),
            "rounds_per_leader": (
                rounds_per_leader if engine == "batched" else None
            ),
        },
    )


def run_campaign(
    testbed: Testbed,
    estimator_factory: Optional[EstimatorFactory] = None,
    config: Optional[CampaignConfig] = None,
    progress: Optional[Callable[[int, Placement], None]] = None,
    engine: str = "packet",
    estimator_spec: Optional[EstimatorSpec] = None,
    rounds_per_leader: int = 8,
    max_workers: Optional[int] = None,
    executor: str = "auto",
    store=None,
    resume: bool = True,
    manifest=None,
    lease_timeout: Optional[float] = None,
    poll_interval: float = 0.05,
) -> CampaignResult:
    """Run the full campaign across group sizes and placements.

    Placements are independent experiments with ``SeedSequence``-derived
    private RNG streams, so sharding them across workers is bit-identical
    to the serial run at a fixed seed — for the per-packet oracle too,
    whose 9·C(8,n)-experiment campaigns are the expensive ones.

    Args:
        testbed: the deployment.
        estimator_factory: builds the per-placement estimator (packet
            engine; may be None when ``engine="batched"``).
        config: campaign parameters.
        progress: optional callback invoked before each experiment (at
            submission time when sharded).
        engine: ``"packet"`` (per-packet ground truth) or ``"batched"``
            (the :mod:`repro.sim` engine).
        estimator_spec: declarative estimator policy (batched engine).
        rounds_per_leader: batch size per leader (batched engine).
        max_workers: shard placements across this many workers; None or
            1 runs serially (identical records either way).
        executor: ``"thread"``, ``"process"``, or ``"auto"`` (default:
            process pool at or above
            :data:`~repro.sim.campaign.PROCESS_POOL_ITEM_THRESHOLD`
            pending experiments — everything shipped to the pool must
            then pickle, which the reference factories do).
        store: optional :class:`repro.store.CampaignStore` (or a
            directory path): every completed experiment is durably
            appended to its content-keyed shard as it finishes.
        resume: with a store, load already-completed experiments
            instead of re-running them (default); the assembled
            :class:`CampaignResult` is bit-identical to an
            uninterrupted run.  ``False`` re-runs everything and
            supersedes the stored records.
        manifest: a sweep name (or a :class:`~repro.store.SweepManifest`)
            to drain through the crash-safe work queue instead of the
            private resume path — requires a store.  The campaign's
            work list is saved as the named manifest (or validated
            against the existing one), and this call becomes one
            *worker* of the sweep: any number of concurrent callers on
            one host or a shared filesystem drain it together, dead
            workers' leases expire and are reclaimed, and every caller
            returns the complete result, bit-identical to a serial run.
            Completion is judged by the store's shards, so manifest
            mode rejects ``resume=False``.
        lease_timeout / poll_interval: work-queue tuning for manifest
            mode (see :class:`repro.store.WorkQueue`).
    """
    if engine not in ("packet", "batched"):
        raise ValueError(f"unknown engine {engine!r}")
    config = config if config is not None else CampaignConfig()
    store = _as_store(store)
    if engine == "packet":
        if estimator_factory is None:
            raise ValueError("the packet engine needs an estimator_factory")
        if estimator_spec is not None:
            raise ValueError(
                "estimator_spec belongs to the batched engine; the packet "
                "engine would silently ignore it"
            )
        run_one = functools.partial(
            run_placement_experiment,
            testbed,
            estimator_factory=estimator_factory,
            config=config,
        )
    else:
        if estimator_spec is None:
            raise ValueError("the batched engine needs an estimator_spec")
        if estimator_factory is not None:
            raise ValueError(
                "estimator_factory belongs to the packet engine; the batched "
                "engine would silently ignore it"
            )
        run_one = functools.partial(
            run_placement_experiment_batched,
            testbed,
            estimator_spec=estimator_spec,
            config=config,
            rounds_per_leader=rounds_per_leader,
        )
    work = campaign_work_items(config)

    estimator_identity = (
        estimator_spec if engine == "batched" else estimator_factory
    )

    def key_for(placement: Placement) -> str:
        return experiment_store_key(
            testbed, config, engine, estimator_identity, placement,
            rounds_per_leader,
        )

    if manifest is not None:
        # Multi-host sweep mode: this call is one worker of a named
        # sweep.  Claim pending experiments through the lease queue,
        # run each claimed batch through shard_map (persisting via the
        # on_result hook the moment each worker finishes), release,
        # and poll until every manifest key has a complete record —
        # peers' records arrive through the store, dead peers' leases
        # come back through expiry.
        if store is None:
            raise ValueError("manifest mode needs a store")
        if not resume:
            raise ValueError(
                "manifest mode judges completion by the store's shards and "
                "cannot re-run finished work; resume=False is incompatible "
                "(re-run a changed campaign under a new manifest name, or "
                "delete the shards)"
            )
        from repro.store.manifest import SweepManifest
        from repro.store.queue import (
            DEFAULT_LEASE_TIMEOUT,
            WorkQueue,
            drain_manifest,
        )
        from repro.store.records import experiment_record_from_json

        built = campaign_sweep_manifest(
            testbed,
            manifest if isinstance(manifest, str) else manifest.name,
            config=config,
            engine=engine,
            estimator_factory=estimator_factory,
            estimator_spec=estimator_spec,
            rounds_per_leader=rounds_per_leader,
        )
        if isinstance(manifest, SweepManifest) and manifest.keys() != built.keys():
            raise ValueError(
                f"manifest {manifest.name!r} does not describe this "
                "campaign's work (different testbed/config/engine/"
                "estimator?)"
            )
        existing = SweepManifest.load(store, built.name, missing_ok=True)
        if existing is not None and existing.keys() != built.keys():
            raise ValueError(
                f"manifest {built.name!r} already describes a different "
                "sweep; use a new name"
            )
        sweep = existing if existing is not None else built.save(store)

        from repro.store.records import experiment_record_to_json

        # The manifest already carries every shard key in work order —
        # reuse it everywhere below instead of recomputing a single
        # content hash.
        work_keys = sweep.keys()
        by_key = dict(zip(work_keys, work))
        key_of = {placement: key for key, (_, placement) in by_key.items()}

        def persist_record(placement: Placement, record: ExperimentRecord) -> None:
            store.append(key_of[placement], experiment_record_to_json(record))

        def run_keys(keys) -> None:
            batch = [by_key[key] for key in keys]
            if progress is not None:
                for n, placement in batch:
                    progress(n, placement)
            shard_map(
                run_one,
                [placement for _, placement in batch],
                max_workers=max_workers,
                executor=executor,
                label=placement_label,
                on_result=lambda placement, record: persist_record(
                    placement, record
                ),
            )

        queue = WorkQueue(
            store,
            sweep,
            lease_timeout=(
                DEFAULT_LEASE_TIMEOUT if lease_timeout is None else lease_timeout
            ),
        )
        drain_manifest(
            queue,
            run_keys,
            batch_size=max(1, max_workers or 1),
            poll_interval=poll_interval,
        )
        return CampaignResult(
            records=[
                experiment_record_from_json(store.load(key))
                for key in work_keys
            ]
        )

    # Checkpoint/resume: load finished experiments from the store, run
    # only the rest, and persist each fresh record the moment its
    # worker completes.  Records are assembled in work order from both
    # sources, so a resumed campaign is bit-identical to an
    # uninterrupted one.
    records: list = [None] * len(work)
    pending: list = []
    if store is not None and resume:
        from repro.store.records import experiment_record_from_json

        for index, (_, placement) in enumerate(work):
            stored = store.load(key_for(placement))
            if stored is not None:
                records[index] = experiment_record_from_json(stored)
            else:
                pending.append(index)
    else:
        pending = list(range(len(work)))
    pending_work = [work[index] for index in pending]

    persist = None
    if store is not None:
        from repro.store.records import experiment_record_to_json

        def persist(placement: Placement, record: ExperimentRecord) -> None:
            store.append(
                key_for(placement), experiment_record_to_json(record)
            )

    if max_workers is None or max_workers <= 1:
        # Serial: fire progress just before each experiment, as before.
        def run_with_progress(item):
            n, placement = item
            if progress is not None:
                progress(n, placement)
            return run_one(placement)

        results = shard_map(
            run_with_progress,
            pending_work,
            max_workers=max_workers,
            executor=executor,
            label=lambda item: placement_label(item[1]),
            on_result=(
                None
                if persist is None
                else lambda item, record: persist(item[1], record)
            ),
        )
    else:
        if progress is not None:
            for n, placement in pending_work:
                progress(n, placement)
        results = shard_map(
            run_one,
            [placement for _, placement in pending_work],
            max_workers=max_workers,
            executor=executor,
            label=placement_label,
            on_result=persist,
        )
    for index, record in zip(pending, results):
        records[index] = record
    return CampaignResult(records=records)
