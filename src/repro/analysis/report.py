"""ASCII rendering of the paper's figures and headline numbers.

The benchmarks print these tables so a reader can compare the simulated
series against the paper's plots line by line (EXPERIMENTS.md records
one snapshot).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.analysis.stats import ReliabilitySummary, SecrecySummary

__all__ = [
    "render_figure1_table",
    "render_figure2_table",
    "render_secrecy_table",
    "render_headline_table",
]


def render_figure1_table(
    erasure_probs: Sequence[float],
    group_curves: Mapping,
    unicast_curves: Mapping,
    measured: Mapping = (),
) -> str:
    """Figure 1 as a table: efficiency vs erasure probability.

    Args:
        erasure_probs: the p grid.
        group_curves: n -> [efficiency per p] (solid lines; n may be inf).
        unicast_curves: n -> [efficiency per p] (dashed lines).
        measured: optional (n, p) -> efficiency spot checks from the
            packet-level simulator.
    """
    lines = ["Figure 1 — maximum efficiency vs erasure probability"]
    header = "  ".join(f"p={p:4.2f}" for p in erasure_probs)
    lines.append(f"{'':16s}{header}")
    for n, values in group_curves.items():
        label = "inf" if n == math.inf else str(n)
        cells = "  ".join(f"{v:6.3f}" for v in values)
        lines.append(f"group   n={label:<4s} {cells}")
    for n, values in unicast_curves.items():
        label = "inf" if n == math.inf else str(n)
        cells = "  ".join(f"{v:6.3f}" for v in values)
        lines.append(f"unicast n={label:<4s} {cells}")
    if measured:
        lines.append("packet-level simulation (oracle estimator):")
        for (n, p), eff in sorted(measured.items()):
            lines.append(f"  n={n} p={p:4.2f}: measured {eff:.3f}")
    return "\n".join(lines)


def render_figure2_table(summaries: Sequence[ReliabilitySummary]) -> str:
    """Figure 2 as a table: reliability series vs group size."""
    lines = [
        "Figure 2 — reliability vs number of terminals",
        f"{'n':>3s} {'exps':>5s} {'min':>6s} {'p95':>6s} {'mean':>6s} {'median':>6s}",
    ]
    for s in sorted(summaries, key=lambda x: x.n_terminals):
        lines.append(
            f"{s.n_terminals:>3d} {s.n_experiments:>5d} "
            f"{s.minimum:>6.2f} {s.p95:>6.2f} {s.mean:>6.2f} {s.median:>6.2f}"
        )
    return "\n".join(lines)


def render_secrecy_table(summaries: Sequence[SecrecySummary]) -> str:
    """Measured secrecy beside Figure 2: residual min-entropy vs n.

    Totals are measured bits across the group size's experiments;
    the residual columns are per-experiment ``min_entropy / secret``
    fractions under the same rank convention as the reliability series
    (min, worst of the best 95%, mean, median).
    """
    lines = [
        "Measured secrecy — residual min-entropy vs number of terminals",
        f"{'n':>3s} {'exps':>5s} {'excl':>5s} {'secret_kb':>10s} "
        f"{'minH_kb':>10s} {'leak_kb':>8s} "
        f"{'min':>6s} {'p95':>6s} {'mean':>6s} {'median':>6s}",
    ]
    for s in sorted(summaries, key=lambda x: x.n_terminals):
        lines.append(
            f"{s.n_terminals:>3d} {s.n_experiments:>5d} {s.n_excluded:>5d} "
            f"{s.secret_bits / 1e3:>10.2f} {s.min_entropy_bits / 1e3:>10.2f} "
            f"{s.leaked_bits / 1e3:>8.2f} "
            f"{s.min_residual:>6.2f} {s.p95_residual:>6.2f} "
            f"{s.mean_residual:>6.2f} {s.median_residual:>6.2f}"
        )
    return "\n".join(lines)


def render_headline_table(
    per_placement: Sequence, bitrate_bps: float = 1e6
) -> str:
    """The §4 headline: minimum efficiency and secret rate at n=8.

    Args:
        per_placement: ExperimentRecord-like objects (need .placement,
            .efficiency, .reliability).
        bitrate_bps: PHY rate (paper: 1 Mbps).
    """
    lines = [
        "Headline (n = 8): efficiency and secret rate per placement",
        f"{'eve cell':>8s} {'efficiency':>11s} {'kbps':>7s} {'reliability':>12s}",
    ]
    worst = None
    for rec in per_placement:
        kbps = rec.efficiency * bitrate_bps / 1e3
        lines.append(
            f"{rec.placement.eve_cell:>8d} {rec.efficiency:>11.4f} "
            f"{kbps:>7.1f} {rec.reliability:>12.2f}"
        )
        worst = rec.efficiency if worst is None else min(worst, rec.efficiency)
    if worst is not None:
        lines.append(
            f"minimum efficiency {worst:.4f} -> "
            f"{worst * bitrate_bps / 1e3:.1f} secret kbps at "
            f"{bitrate_bps / 1e6:.0f} Mbps (paper: 0.038 -> 38 kbps)"
        )
    return "\n".join(lines)
