"""Order statistics for experiment campaigns (Figure 2's four series).

The paper plots, per group size n: the minimum reliability across all
experiments (diamonds), the average (circles), the minimum achieved
during 95% of experiments (triangles — i.e. the 5th percentile) and the
minimum achieved during 50% of experiments (squares — the median).

Two aggregation styles share the :class:`ReliabilitySummary` output:

* :func:`summarize_reliability` — the original list-in, summary-out
  collapse (fine when the population already sits in memory).
* **Streaming accumulators** — :class:`StreamingMoments` (Welford
  moments with Chan's parallel merge) and :class:`ValueCountAccumulator`
  / :class:`ReliabilityAccumulator` (an exact, merge-able value
  multiset for the rank statistics).  Campaign-store readers feed these
  one record at a time, so Figure-2 aggregates over arbitrarily large
  sweeps never materialise the experiment population; and because the
  finalised statistics are computed from the *multiset* (insertion and
  merge order cannot matter), an interrupted-and-resumed campaign
  aggregates bit-identically to an uninterrupted one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "ReliabilitySummary",
    "summarize_reliability",
    "best_fraction_minimum",
    "StreamingMoments",
    "ValueCountAccumulator",
    "ReliabilityAccumulator",
]


def best_fraction_minimum(values: Sequence[float], fraction: float) -> float:
    """Minimum over the best ``fraction`` of experiments.

    "Minimum reliability achieved during 95% of the experiments" keeps
    the best 95% of runs and reports their worst member — the
    ``(1 - fraction)``-quantile by rank, discarding the bottom tail.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    vals = sorted(values, reverse=True)
    if not vals:
        raise ValueError("no values to summarise")
    keep = max(1, int(np.ceil(fraction * len(vals))))
    return vals[keep - 1]


@dataclass(frozen=True)
class ReliabilitySummary:
    """The four Figure-2 series for one group size."""

    n_terminals: int
    n_experiments: int
    minimum: float
    mean: float
    p95: float  # min over the best 95% of experiments (triangles)
    median: float  # min over the best 50% of experiments (squares)

    def as_row(self) -> tuple:
        return (
            self.n_terminals,
            self.n_experiments,
            self.minimum,
            self.p95,
            self.mean,
            self.median,
        )


def summarize_reliability(
    n_terminals: int, reliabilities: Sequence[float]
) -> ReliabilitySummary:
    """Collapse one group size's experiments into the Figure-2 series."""
    if not reliabilities:
        raise ValueError("need at least one experiment")
    values = list(reliabilities)
    return ReliabilitySummary(
        n_terminals=n_terminals,
        n_experiments=len(values),
        minimum=min(values),
        mean=float(np.mean(values)),
        p95=best_fraction_minimum(values, 0.95),
        median=best_fraction_minimum(values, 0.50),
    )


class StreamingMoments:
    """Welford moment accumulator with Chan's parallel merge.

    Tracks count, mean, M2 (sum of squared deviations), minimum and
    maximum in O(1) memory — one :meth:`update` per observation, one
    :meth:`merge` per shard — so campaign-wide means and variances
    never need the observation list.  Used by the benchmark harness for
    timing statistics and by store readers for efficiency aggregates.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator in (Chan et al.'s pairwise update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Population variance (matches ``np.var`` up to rounding)."""
        if self.count == 0:
            raise ValueError("no values accumulated")
        return self.m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class ValueCountAccumulator:
    """Exact, merge-able multiset of observations.

    The Figure-2 series are *rank* statistics (minimum, best-fraction
    minima) — not derivable from moments alone — so this accumulator
    keeps a ``value -> count`` map instead: exact, mergeable, and
    order-independent.  Memory is O(distinct values): reliability
    populations concentrate on a spike at 1.0 plus a short tail, so the
    map stays tiny even for campaigns whose record lists would not.

    Every finalised statistic is computed from the sorted multiset,
    never from insertion order, which is what makes aggregates
    bit-identical across serial, sharded, and interrupted-then-resumed
    campaigns.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[float, int] = {}

    def add(self, value: float, count: int = 1) -> None:
        value = float(value)
        if count < 1:
            raise ValueError("count must be positive")
        self.counts[value] = self.counts.get(value, 0) + count

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "ValueCountAccumulator") -> None:
        for value, count in other.counts.items():
            self.counts[value] = self.counts.get(value, 0) + count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def __bool__(self) -> bool:
        return bool(self.counts)

    @property
    def minimum(self) -> float:
        if not self.counts:
            raise ValueError("no values accumulated")
        return min(self.counts)

    @property
    def maximum(self) -> float:
        if not self.counts:
            raise ValueError("no values accumulated")
        return max(self.counts)

    @property
    def mean(self) -> float:
        """Exact mean via compensated summation in sorted-value order
        (deterministic whatever the insertion/merge order)."""
        if not self.counts:
            raise ValueError("no values accumulated")
        total = self.total
        return math.fsum(
            value * count for value, count in sorted(self.counts.items())
        ) / total

    def best_fraction_minimum(self, fraction: float) -> float:
        """Weighted-rank twin of :func:`best_fraction_minimum`: minimum
        over the best ``fraction`` of the multiset."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        total = self.total
        if total == 0:
            raise ValueError("no values to summarise")
        keep = max(1, int(np.ceil(fraction * total)))
        seen = 0
        for value, count in sorted(self.counts.items(), reverse=True):
            seen += count
            if seen >= keep:
                return value
        raise AssertionError("rank walked past the multiset")  # pragma: no cover


class ReliabilityAccumulator:
    """Streaming Figure-2 aggregate for one group size.

    Wraps a :class:`ValueCountAccumulator` with the campaign-record
    NaN convention: a zero-secret experiment carries NaN reliability
    and is *excluded* from the population (counted in
    :attr:`n_excluded`) — the same rule
    :meth:`repro.analysis.experiments.CampaignResult.reliabilities`
    applies in memory, so store-streamed aggregates can never be
    poisoned by round-tripped NaNs.
    """

    __slots__ = ("values", "n_excluded")

    def __init__(self) -> None:
        self.values = ValueCountAccumulator()
        self.n_excluded = 0

    def add(self, reliability: float) -> None:
        value = float(reliability)
        if math.isnan(value):
            self.n_excluded += 1
        else:
            self.values.add(value)

    def extend(self, reliabilities: Iterable[float]) -> None:
        for value in reliabilities:
            self.add(value)

    def merge(self, other: "ReliabilityAccumulator") -> None:
        self.values.merge(other.values)
        self.n_excluded += other.n_excluded

    @property
    def n_experiments(self) -> int:
        """Included experiments (NaN exclusions not counted)."""
        return self.values.total

    def __bool__(self) -> bool:
        return bool(self.values)

    def summary(self, n_terminals: int) -> ReliabilitySummary:
        """The four Figure-2 series, computed from the multiset."""
        if not self.values:
            raise ValueError("need at least one experiment")
        return ReliabilitySummary(
            n_terminals=n_terminals,
            n_experiments=self.values.total,
            minimum=self.values.minimum,
            mean=self.values.mean,
            p95=self.values.best_fraction_minimum(0.95),
            median=self.values.best_fraction_minimum(0.50),
        )
