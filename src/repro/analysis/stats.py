"""Order statistics for experiment campaigns (Figure 2's four series).

The paper plots, per group size n: the minimum reliability across all
experiments (diamonds), the average (circles), the minimum achieved
during 95% of experiments (triangles — i.e. the 5th percentile) and the
minimum achieved during 50% of experiments (squares — the median).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ReliabilitySummary", "summarize_reliability", "best_fraction_minimum"]


def best_fraction_minimum(values: Sequence[float], fraction: float) -> float:
    """Minimum over the best ``fraction`` of experiments.

    "Minimum reliability achieved during 95% of the experiments" keeps
    the best 95% of runs and reports their worst member — the
    ``(1 - fraction)``-quantile by rank, discarding the bottom tail.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    vals = sorted(values, reverse=True)
    if not vals:
        raise ValueError("no values to summarise")
    keep = max(1, int(np.ceil(fraction * len(vals))))
    return vals[keep - 1]


@dataclass(frozen=True)
class ReliabilitySummary:
    """The four Figure-2 series for one group size."""

    n_terminals: int
    n_experiments: int
    minimum: float
    mean: float
    p95: float  # min over the best 95% of experiments (triangles)
    median: float  # min over the best 50% of experiments (squares)

    def as_row(self) -> tuple:
        return (
            self.n_terminals,
            self.n_experiments,
            self.minimum,
            self.p95,
            self.mean,
            self.median,
        )


def summarize_reliability(
    n_terminals: int, reliabilities: Sequence[float]
) -> ReliabilitySummary:
    """Collapse one group size's experiments into the Figure-2 series."""
    if not reliabilities:
        raise ValueError("need at least one experiment")
    values = list(reliabilities)
    return ReliabilitySummary(
        n_terminals=n_terminals,
        n_experiments=len(values),
        minimum=min(values),
        mean=float(np.mean(values)),
        p95=best_fraction_minimum(values, 0.95),
        median=best_fraction_minimum(values, 0.50),
    )
