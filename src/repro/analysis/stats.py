"""Order statistics for experiment campaigns (Figure 2's four series).

The paper plots, per group size n: the minimum reliability across all
experiments (diamonds), the average (circles), the minimum achieved
during 95% of experiments (triangles — i.e. the 5th percentile) and the
minimum achieved during 50% of experiments (squares — the median).

Two aggregation styles share the :class:`ReliabilitySummary` output:

* :func:`summarize_reliability` — the original list-in, summary-out
  collapse (fine when the population already sits in memory).
* **Streaming accumulators** — :class:`StreamingMoments` (Welford
  moments with Chan's parallel merge) and :class:`ValueCountAccumulator`
  / :class:`ReliabilityAccumulator` (an exact, merge-able value
  multiset for the rank statistics).  Campaign-store readers feed these
  one record at a time, so Figure-2 aggregates over arbitrarily large
  sweeps never materialise the experiment population; and because the
  finalised statistics are computed from the *multiset* (insertion and
  merge order cannot matter), an interrupted-and-resumed campaign
  aggregates bit-identically to an uninterrupted one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "ReliabilitySummary",
    "summarize_reliability",
    "best_fraction_minimum",
    "StreamingMoments",
    "ValueCountAccumulator",
    "ReliabilityAccumulator",
    "SecrecySummary",
    "SecrecyAccumulator",
]


def _best_fraction_rank(fraction: float, n: int) -> int:
    """How many best-ranked observations the best ``fraction`` of ``n``
    keeps: ``ceil(fraction * n)`` in intended (decimal) arithmetic.

    The product is guarded against binary double-rounding before the
    ceil: ``0.95 * 20`` evaluates to ``19.000000000000004`` in float64,
    and a bare ``ceil`` would keep 20 observations — reporting the
    global minimum for the p95 series, an off-by-one at exactly the
    ranks Figure 2 plots.  Clamping to ``[1, n]`` keeps ``fraction=1.0``
    and single-sample populations in range.
    """
    return max(1, min(n, math.ceil(fraction * n - 1e-9)))


def best_fraction_minimum(values: Sequence[float], fraction: float) -> float:
    """Minimum over the best ``fraction`` of experiments.

    "Minimum reliability achieved during 95% of the experiments" keeps
    the best 95% of runs and reports their worst member — the
    ``(1 - fraction)``-quantile by rank, discarding the bottom tail.

    NaN sentinels (zero-secret experiments, the campaign-record
    convention) are excluded before ranking — they would otherwise
    poison the sort order — and a population that is *all* sentinels
    returns NaN rather than raising, matching
    :meth:`ReliabilityAccumulator.summary`.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    vals = sorted(
        (v for v in map(float, values) if not math.isnan(v)), reverse=True
    )
    if not vals:
        if len(values) > 0:
            return math.nan
        raise ValueError("no values to summarise")
    return vals[_best_fraction_rank(fraction, len(vals)) - 1]


@dataclass(frozen=True)
class ReliabilitySummary:
    """The four Figure-2 series for one group size."""

    n_terminals: int
    n_experiments: int
    minimum: float
    mean: float
    p95: float  # min over the best 95% of experiments (triangles)
    median: float  # min over the best 50% of experiments (squares)

    def as_row(self) -> tuple:
        return (
            self.n_terminals,
            self.n_experiments,
            self.minimum,
            self.p95,
            self.mean,
            self.median,
        )


def summarize_reliability(
    n_terminals: int, reliabilities: Sequence[float]
) -> ReliabilitySummary:
    """Collapse one group size's experiments into the Figure-2 series."""
    if not reliabilities:
        raise ValueError("need at least one experiment")
    values = list(reliabilities)
    return ReliabilitySummary(
        n_terminals=n_terminals,
        n_experiments=len(values),
        minimum=min(values),
        mean=float(np.mean(values)),
        p95=best_fraction_minimum(values, 0.95),
        median=best_fraction_minimum(values, 0.50),
    )


class StreamingMoments:
    """Welford moment accumulator with Chan's parallel merge.

    Tracks count, mean, M2 (sum of squared deviations), minimum and
    maximum in O(1) memory — one :meth:`update` per observation, one
    :meth:`merge` per shard — so campaign-wide means and variances
    never need the observation list.  Used by the benchmark harness for
    timing statistics and by store readers for efficiency aggregates.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator in (Chan et al.'s pairwise update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Population variance (matches ``np.var`` up to rounding)."""
        if self.count == 0:
            raise ValueError("no values accumulated")
        return self.m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class ValueCountAccumulator:
    """Exact, merge-able multiset of observations.

    The Figure-2 series are *rank* statistics (minimum, best-fraction
    minima) — not derivable from moments alone — so this accumulator
    keeps a ``value -> count`` map instead: exact, mergeable, and
    order-independent.  Memory is O(distinct values): reliability
    populations concentrate on a spike at 1.0 plus a short tail, so the
    map stays tiny even for campaigns whose record lists would not.

    Every finalised statistic is computed from the sorted multiset,
    never from insertion order, which is what makes aggregates
    bit-identical across serial, sharded, and interrupted-then-resumed
    campaigns.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[float, int] = {}

    def add(self, value: float, count: int = 1) -> None:
        value = float(value)
        if count < 1:
            raise ValueError("count must be positive")
        self.counts[value] = self.counts.get(value, 0) + count

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "ValueCountAccumulator") -> None:
        for value, count in other.counts.items():
            self.counts[value] = self.counts.get(value, 0) + count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def __bool__(self) -> bool:
        return bool(self.counts)

    @property
    def minimum(self) -> float:
        if not self.counts:
            raise ValueError("no values accumulated")
        return min(self.counts)

    @property
    def maximum(self) -> float:
        if not self.counts:
            raise ValueError("no values accumulated")
        return max(self.counts)

    @property
    def sum(self) -> float:
        """Exact total via compensated summation in sorted-value order
        (deterministic whatever the insertion/merge order)."""
        return math.fsum(
            value * count for value, count in sorted(self.counts.items())
        )

    @property
    def mean(self) -> float:
        """Exact mean (see :attr:`sum` for the determinism contract)."""
        if not self.counts:
            raise ValueError("no values accumulated")
        return self.sum / self.total

    def best_fraction_minimum(self, fraction: float) -> float:
        """Weighted-rank twin of :func:`best_fraction_minimum`: minimum
        over the best ``fraction`` of the multiset."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        total = self.total
        if total == 0:
            raise ValueError("no values to summarise")
        keep = _best_fraction_rank(fraction, total)
        seen = 0
        for value, count in sorted(self.counts.items(), reverse=True):
            seen += count
            if seen >= keep:
                return value
        raise AssertionError("rank walked past the multiset")  # pragma: no cover


class ReliabilityAccumulator:
    """Streaming Figure-2 aggregate for one group size.

    Wraps a :class:`ValueCountAccumulator` with the campaign-record
    NaN convention: a zero-secret experiment carries NaN reliability
    and is *excluded* from the population (counted in
    :attr:`n_excluded`) — the same rule
    :meth:`repro.analysis.experiments.CampaignResult.reliabilities`
    applies in memory, so store-streamed aggregates can never be
    poisoned by round-tripped NaNs.
    """

    __slots__ = ("values", "n_excluded")

    def __init__(self) -> None:
        self.values = ValueCountAccumulator()
        self.n_excluded = 0

    def add(self, reliability: float) -> None:
        value = float(reliability)
        if math.isnan(value):
            self.n_excluded += 1
        else:
            self.values.add(value)

    def extend(self, reliabilities: Iterable[float]) -> None:
        for value in reliabilities:
            self.add(value)

    def merge(self, other: "ReliabilityAccumulator") -> None:
        self.values.merge(other.values)
        self.n_excluded += other.n_excluded

    @property
    def n_experiments(self) -> int:
        """Included experiments (NaN exclusions not counted)."""
        return self.values.total

    def __bool__(self) -> bool:
        return bool(self.values)

    def summary(self, n_terminals: int) -> ReliabilitySummary:
        """The four Figure-2 series, computed from the multiset.

        A population that is 100% NaN-sentinel (every experiment
        produced zero secret) has no reliability to rank: the summary
        is a NaN row with ``n_experiments=0`` — not a division error —
        and merging such an accumulator into a populated one only adds
        to :attr:`n_excluded`, leaving the populated statistics alone.
        """
        if not self.values:
            if self.n_excluded > 0:
                return ReliabilitySummary(
                    n_terminals=n_terminals,
                    n_experiments=0,
                    minimum=math.nan,
                    mean=math.nan,
                    p95=math.nan,
                    median=math.nan,
                )
            raise ValueError("need at least one experiment")
        return ReliabilitySummary(
            n_terminals=n_terminals,
            n_experiments=self.values.total,
            minimum=self.values.minimum,
            mean=self.values.mean,
            p95=self.values.best_fraction_minimum(0.95),
            median=self.values.best_fraction_minimum(0.50),
        )


@dataclass(frozen=True)
class SecrecySummary:
    """Measured-secrecy series for one group size (beside Figure 2).

    Totals are measured bits (Eve's knowledge subtracted), fractions
    are per-experiment residuals ``min_entropy_bits / secret_bits`` —
    so ``min_residual`` is the worst experiment's surviving fraction
    and ``p95_residual`` the worst among the best 95%, the same rank
    convention as the reliability series.
    """

    n_terminals: int
    n_experiments: int
    n_excluded: int
    secret_bits: float
    min_entropy_bits: float
    leaked_bits: float
    min_residual: float
    mean_residual: float
    p95_residual: float
    median_residual: float

    def as_row(self) -> tuple:
        return (
            self.n_terminals,
            self.n_experiments,
            self.n_excluded,
            self.secret_bits,
            self.min_entropy_bits,
            self.leaked_bits,
            self.min_residual,
            self.p95_residual,
            self.mean_residual,
            self.median_residual,
        )


class SecrecyAccumulator:
    """Streaming, merge-able leakage/min-entropy aggregate.

    The measured-secrecy twin of :class:`ReliabilityAccumulator`: one
    :meth:`add` per experiment record (its measured ``secret_bits`` and
    ``min_entropy_bits``), exact multisets underneath, so aggregates
    are bit-identical across serial, sharded, and resumed campaigns.
    Zero-secret experiments have nothing to protect and are excluded
    from the residual-fraction population (counted in
    :attr:`n_excluded`), mirroring the NaN-reliability convention.
    """

    __slots__ = ("residuals", "secret_bits", "entropy_bits", "n_excluded")

    def __init__(self) -> None:
        self.residuals = ValueCountAccumulator()
        self.secret_bits = ValueCountAccumulator()
        self.entropy_bits = ValueCountAccumulator()
        self.n_excluded = 0

    def add(self, secret_bits: float, min_entropy_bits: float) -> None:
        secret = float(secret_bits)
        entropy = float(min_entropy_bits)
        if secret <= 0.0 or math.isnan(entropy):
            self.n_excluded += 1
            return
        if entropy < 0.0 or entropy > secret:
            raise ValueError(
                "min-entropy must lie in [0, secret_bits] "
                f"(got {entropy} of {secret})"
            )
        self.residuals.add(entropy / secret)
        self.secret_bits.add(secret)
        self.entropy_bits.add(entropy)

    def add_record(self, record) -> None:
        """Accumulate an :class:`~repro.analysis.experiments.ExperimentRecord`
        (or anything with ``secret_bits`` / ``min_entropy_bits``)."""
        self.add(record.secret_bits, record.min_entropy_bits)

    def merge(self, other: "SecrecyAccumulator") -> None:
        self.residuals.merge(other.residuals)
        self.secret_bits.merge(other.secret_bits)
        self.entropy_bits.merge(other.entropy_bits)
        self.n_excluded += other.n_excluded

    @property
    def n_experiments(self) -> int:
        return self.residuals.total

    def __bool__(self) -> bool:
        return bool(self.residuals) or self.n_excluded > 0

    def summary(self, n_terminals: int) -> SecrecySummary:
        """Collapse into the secrecy series; NaN row when every
        experiment was excluded (nothing agreed, nothing leaked)."""
        if not self.residuals:
            if self.n_excluded == 0:
                raise ValueError("need at least one experiment")
            return SecrecySummary(
                n_terminals=n_terminals,
                n_experiments=0,
                n_excluded=self.n_excluded,
                secret_bits=0.0,
                min_entropy_bits=0.0,
                leaked_bits=0.0,
                min_residual=math.nan,
                mean_residual=math.nan,
                p95_residual=math.nan,
                median_residual=math.nan,
            )
        total_secret = self.secret_bits.sum
        total_entropy = self.entropy_bits.sum
        return SecrecySummary(
            n_terminals=n_terminals,
            n_experiments=self.residuals.total,
            n_excluded=self.n_excluded,
            secret_bits=total_secret,
            min_entropy_bits=total_entropy,
            leaked_bits=max(total_secret - total_entropy, 0.0),
            min_residual=self.residuals.minimum,
            mean_residual=(
                total_entropy / total_secret if total_secret > 0 else math.nan
            ),
            p95_residual=self.residuals.best_fraction_minimum(0.95),
            median_residual=self.residuals.best_fraction_minimum(0.50),
        )
