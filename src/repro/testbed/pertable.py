"""Analytic per-pattern PER tables: the slot-aware testbed bridge.

The batched engine used to reach the physical testbed through a
Monte-Carlo link probe that *averaged loss across all interference
patterns* into an IID :class:`~repro.sim.spec.MatrixLossSpec` — erasing
exactly the slot-level burstiness the rotating schedule (§3.3/§4 of the
paper) engineers.  This module replaces the probe with closed-form
channel math: for every (transmitter, receiver, noise pattern) triple
the mean SINR follows from :mod:`repro.net.radio` path loss plus the
pattern's active-antenna interference powers, and the Rayleigh-faded
packet error rate is integrated by fixed quadrature
(:func:`repro.net.radio.expected_packet_loss`) instead of sampled.

The result feeds a :class:`~repro.sim.spec.ScheduleLossSpec`, so the
per-pattern structure — in-beam slots bursty-lossy, clear slots clean —
survives all the way into the subset-lattice accounting.  Faster (no
per-packet probe loop) and more faithful at once.

Axis and ordering conventions (shared with :mod:`repro.sim.spec`):

* Tables are ``(n_patterns, n_tx, n_rx)``; pattern index ``k`` is the
  schedule's k-th noise pattern, active during slots
  ``[k * slots_per_pattern, (k+1) * slots_per_pattern)`` of each
  period.
* ``rx`` columns follow the engine's link order: the leader's fellow
  terminals in placement order first, then every Eve antenna — her
  placement cell followed by ``eve_extra_cells`` in the order given.
  A multi-antenna Eve therefore contributes one loss column per
  antenna cell, and :func:`repro.sim.reception.sample_receptions`
  unions reception across exactly those trailing columns.
* Geometry jitter draws from the caller's generator in
  :meth:`~repro.testbed.deployment.Testbed.build_medium` order
  (terminals, Eve, extra antennas), so a per-packet medium built from
  the same seed sees identical positions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.net.packet import DEFAULT_HEADER_BYTES
from repro.net.radio import expected_packet_loss, received_power_dbm, sinr_db
from repro.sim.spec import ScheduleLossSpec
from repro.testbed.deployment import Testbed
from repro.testbed.placements import Placement

__all__ = [
    "pattern_mean_sinr_db",
    "schedule_loss_table",
    "placement_schedule_specs",
]


def pattern_mean_sinr_db(
    testbed: Testbed,
    tx_positions: Sequence[tuple],
    rx_positions: Sequence[tuple],
) -> np.ndarray:
    """Pre-fading mean SINR per (pattern, transmitter, receiver).

    Interference depends only on the receiver position and the active
    pattern; the signal term only on the (tx, rx) distance.  Returns
    shape ``(n_patterns, n_tx, n_rx)`` in dB.  With interference
    disabled (or no patterns) a single all-clear pattern is returned so
    the downstream schedule degenerates to the static channel.
    """
    cfg = testbed.config
    field = testbed.interference
    signal = np.empty((len(tx_positions), len(rx_positions)))
    for i, tx in enumerate(tx_positions):
        for j, rx in enumerate(rx_positions):
            distance = float(np.hypot(tx[0] - rx[0], tx[1] - rx[1]))
            signal[i, j] = received_power_dbm(
                cfg.radio.tx_power_dbm, distance, cfg.radio
            )
    n_patterns = field.n_patterns() if field.enabled else 0
    sinr = np.empty((max(n_patterns, 1),) + signal.shape)
    if n_patterns == 0:
        sinr[0] = signal - cfg.radio.noise_floor_dbm
        return sinr
    for k in range(n_patterns):
        slot = k * cfg.slots_per_pattern
        for j, rx in enumerate(rx_positions):
            interference = field.interference_powers_dbm(rx, slot)
            for i in range(len(tx_positions)):
                sinr[k, i, j] = sinr_db(
                    signal[i, j], interference, cfg.radio.noise_floor_dbm
                )
    return sinr


def schedule_loss_table(
    testbed: Testbed,
    tx_positions: Sequence[tuple],
    rx_positions: Sequence[tuple],
    payload_bytes: int = 100,
) -> np.ndarray:
    """Expected loss probability per (pattern, transmitter, receiver).

    Combines the deployment's residual ``base_loss`` with the analytic
    Rayleigh/shadowing PER expectation at each pattern's mean SINR —
    the closed-form counterpart of probing each link with
    :meth:`~repro.testbed.deployment.Testbed.link_loss_probe`.

    Args:
        testbed: the deployment (radio, interference, base loss).
        tx_positions / rx_positions: node coordinates in metres.
        payload_bytes: packet payload; the link-layer header is added
            exactly as :attr:`repro.net.packet.Packet.wire_bytes` does.

    Returns:
        Array ``(n_patterns, n_tx, n_rx)`` of loss probabilities.
    """
    cfg = testbed.config
    sinr = pattern_mean_sinr_db(testbed, tx_positions, rx_positions)
    packet_bits = 8 * (payload_bytes + DEFAULT_HEADER_BYTES)
    per = expected_packet_loss(sinr, packet_bits, cfg.radio)
    return cfg.base_loss + (1.0 - cfg.base_loss) * per


def placement_schedule_specs(
    testbed: Testbed,
    placement: Placement,
    rng: np.random.Generator,
    payload_bytes: int = 100,
    eve_extra_cells: tuple = (),
) -> list:
    """Per-leader :class:`~repro.sim.spec.ScheduleLossSpec`s for a placement.

    The slot-aware replacement for the probe-based
    ``placement_loss_specs`` bridge: one spec per leader, links ordered
    as the batched engine expects (the other terminals in placement
    order, then every Eve antenna), each carrying the full per-pattern
    loss table and the deployment's dwell length.

    ``eve_extra_cells`` adds one trailing loss column per extra Eve
    antenna (the multi-antenna threat model of the paper's §6 and
    examples/multiantenna_eve.py): each antenna cell gets its own
    per-(pattern, tx) SINR column, so an antenna parked outside the
    jammed beam keeps hearing exactly when the schedule protects the
    primary cell.  Pair the resulting specs with
    ``AdversarySpec(antennas=1 + len(eve_extra_cells))`` so the
    engine's reception sampler unions across all antenna columns.

    ``rng`` draws the position jitter only — the same stream
    :meth:`~repro.testbed.deployment.Testbed.build_medium` would
    consume (terminals, Eve, then extra antennas), so packet- and
    batched-engine experiments with a shared seed see the same
    geometry.
    """
    for cell in eve_extra_cells:
        if cell in placement.terminal_cells:
            raise ValueError("Eve's extra antennas cannot share terminal cells")
    terminal_positions, eve_position = testbed.node_positions(placement, rng)
    antenna_positions = [eve_position] + testbed.antenna_positions(
        tuple(eve_extra_cells), rng
    )
    table = schedule_loss_table(
        testbed,
        tx_positions=terminal_positions,
        rx_positions=list(terminal_positions) + antenna_positions,
        payload_bytes=payload_bytes,
    )
    n = placement.n_terminals
    n_antennas = len(antenna_positions)
    specs = []
    for leader in range(n):
        # Fellow terminals first, then every Eve antenna column.
        receivers = [j for j in range(n) if j != leader] + list(
            range(n, n + n_antennas)
        )
        pattern_probabilities = tuple(
            tuple(float(table[k, leader, j]) for j in receivers)
            for k in range(table.shape[0])
        )
        specs.append(
            ScheduleLossSpec(
                pattern_probabilities=pattern_probabilities,
                slots_per_pattern=testbed.config.slots_per_pattern,
            )
        )
    return specs
