"""Wiring geometry + interference + PHY into a broadcast medium.

:class:`Testbed` is the top-level factory: give it a
:class:`~repro.testbed.placements.Placement` and it returns a
:class:`~repro.net.medium.BroadcastMedium` populated with terminals at
cell centres, Eve in her cell, and a :class:`PhysicalLossModel` that
computes per-packet delivery from SINR under the rotating interference
schedule.

Calibration notes (see DESIGN.md §2): with the default 0 dBm interferer
EIRP, a jammed cell sees interference within a few dB of the desired
signal, so Rayleigh fading puts jammed links in the 0.4-0.9 loss regime
while clear links lose almost nothing — the partial-erasure environment
the protocol feeds on, and the same mechanism the paper engineered with
WARP boards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.net.medium import BroadcastMedium, LossModel
from repro.net.node import Eavesdropper, Node, Terminal
from repro.net.packet import Packet
from repro.net.radio import (
    RadioConfig,
    received_power_dbm,
    sample_packet_loss,
    sinr_db,
)
from repro.net.trace import TransmissionLedger
from repro.testbed.geometry import TestbedGeometry
from repro.testbed.interference import InterferenceField, build_interference_field
from repro.testbed.placements import Placement

__all__ = ["TestbedConfig", "PhysicalLossModel", "Testbed"]


@dataclass(frozen=True)
class TestbedConfig:
    """All knobs of the simulated deployment.

    Attributes:
        geometry: cell grid (defaults to the paper's 14 m² 3×3).
        radio: PHY parameters (defaults to the paper's 802.11g setup).
        interferer_power_dbm: EIRP of each interference antenna.
        interference_enabled: ablation switch (§3.3 of the paper argues
            the protocol needs the artificial interference).
        slots_per_pattern: transmissions per noise-pattern dwell.
        base_loss: residual loss probability on every link, modelling
            non-PHY effects (collisions, driver hiccups).
        position_jitter_m: uniform jitter applied to node positions so
            distinct experiments see slightly different geometries.
    """

    geometry: TestbedGeometry = field(default_factory=TestbedGeometry)
    radio: RadioConfig = field(default_factory=RadioConfig)
    interferer_power_dbm: float = 0.0
    interference_enabled: bool = True
    slots_per_pattern: int = 10
    base_loss: float = 0.02
    position_jitter_m: float = 0.15


class PhysicalLossModel(LossModel):
    """SINR-driven per-packet loss under the interference schedule."""

    def __init__(self, config: TestbedConfig, field_: InterferenceField) -> None:
        self.config = config
        self.field = field_

    def lost_at(
        self,
        src: Node,
        position: tuple,
        dst: Node,
        packet: Packet,
        slot: int,
        rng: np.random.Generator,
    ) -> bool:
        cfg = self.config
        if cfg.base_loss > 0 and rng.random() < cfg.base_loss:
            return True
        distance = src.distance_to(position)
        signal = received_power_dbm(cfg.radio.tx_power_dbm, distance, cfg.radio)
        interference = self.field.interference_powers_dbm(position, slot)
        mean_sinr = sinr_db(signal, interference, cfg.radio.noise_floor_dbm)
        packet_bits = 8 * packet.wire_bytes
        return sample_packet_loss(mean_sinr, packet_bits, cfg.radio, rng)


class Testbed:
    """Factory for placement-specific broadcast media.

    Example:
        >>> testbed = Testbed(TestbedConfig())
        >>> placement = next(enumerate_placements(3))  # doctest: +SKIP
        >>> medium, names = testbed.build_medium(placement, rng)  # doctest: +SKIP
    """

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config if config is not None else TestbedConfig()
        self.interference = build_interference_field(
            self.config.geometry,
            self.config.radio,
            self.config.interferer_power_dbm,
            slots_per_pattern=self.config.slots_per_pattern,
        )
        self.interference.enabled = self.config.interference_enabled

    def _place(self, cell: int, rng: np.random.Generator) -> tuple:
        x, y = self.config.geometry.cell_center(cell)
        jitter = self.config.position_jitter_m
        if jitter > 0:
            x += float(rng.uniform(-jitter, jitter))
            y += float(rng.uniform(-jitter, jitter))
        return (x, y)

    def node_positions(self, placement: Placement, rng: np.random.Generator) -> tuple:
        """Jittered node coordinates for a placement.

        Returns ``(terminal_positions, eve_position)`` drawing the same
        jitter stream :meth:`build_medium` would (terminals in placement
        order, then Eve), so the analytic slot-aware bridge
        (:mod:`repro.testbed.pertable`) and a per-packet medium built
        from the same generator state see identical geometry.  Extra
        Eve antennas draw *after* these positions — call
        :meth:`antenna_positions` next with the same generator.
        """
        terminal_positions = [
            self._place(cell, rng) for cell in placement.terminal_cells
        ]
        eve_position = self._place(placement.eve_cell, rng)
        return terminal_positions, eve_position

    def antenna_positions(
        self, cells: tuple, rng: np.random.Generator
    ) -> list:
        """Jittered positions for extra Eve-antenna cells.

        Consumes the jitter stream in the same order
        :meth:`build_medium` does (after the terminal and primary Eve
        draws of :meth:`node_positions`), so the analytic bridge and a
        per-packet medium sharing a generator state agree on every
        antenna's geometry.
        """
        return [self._place(c, rng) for c in cells]

    def build_medium(
        self,
        placement: Placement,
        rng: np.random.Generator,
        eve_extra_cells: tuple = (),
        ledger: Optional[TransmissionLedger] = None,
    ) -> tuple:
        """Instantiate nodes for a placement and wire up the medium.

        Args:
            placement: Eve's cell + terminal cells.
            rng: randomness for jitter and all subsequent channel draws.
            eve_extra_cells: additional antenna cells for a multi-antenna
                Eve (the paper's §6 threat model); must avoid terminals.
            ledger: optional shared ledger.

        Returns:
            (medium, terminal_names) where terminal_names[i] corresponds
            to terminal_cells[i]; Eve's node is named ``"eve"``.
        """
        for cell in eve_extra_cells:
            if cell in placement.terminal_cells:
                raise ValueError("Eve's extra antennas cannot share terminal cells")
        terminal_positions, eve_position = self.node_positions(placement, rng)
        terminals = [
            Terminal(name=f"T{i}", position=pos)
            for i, pos in enumerate(terminal_positions)
        ]
        eve = Eavesdropper(
            name="eve",
            position=eve_position,
            extra_antennas=self.antenna_positions(tuple(eve_extra_cells), rng),
        )
        loss_model = PhysicalLossModel(self.config, self.interference)
        medium = BroadcastMedium(
            terminals + [eve], loss_model, rng, ledger=ledger
        )
        return medium, [t.name for t in terminals]

    def eve_candidate_cells(self, placement: Placement) -> list:
        """Cells Eve could occupy: everything the terminals do not.

        The paper's deployment requires every node to keep the minimum
        distance (one cell diagonal) from every other node, so Eve cannot
        share a cell with a terminal.  Schedule-based estimators
        (:class:`repro.testbed.estimator.InterferenceAwareEstimator`)
        minimise their certified budget over exactly this candidate set —
        which is why their bounds tighten as the group grows and fills
        the grid.
        """
        occupied = set(placement.terminal_cells)
        return [c for c in self.config.geometry.all_cells() if c not in occupied]

    # -- diagnostics -----------------------------------------------------

    def link_loss_probe(
        self,
        placement: Placement,
        rng: np.random.Generator,
        packet_bytes: int = 128,
        trials: int = 300,
    ) -> dict:
        """Monte-Carlo per-link loss rates per noise pattern (diagnostics).

        Returns { (src, dst, pattern_index): loss_rate } for every
        directed terminal/Eve pair — used by calibration tests and the
        EXPERIMENTS.md appendix.
        """
        from repro.net.packet import PacketKind  # local to avoid cycle at import

        medium, names = self.build_medium(placement, rng)
        probe = Packet(
            kind=PacketKind.X_DATA,
            src=names[0],
            payload=np.zeros(packet_bytes, dtype=np.uint8),
        )
        out: dict = {}
        all_names = names + ["eve"]
        n_patterns = self.interference.n_patterns()
        for pattern in range(n_patterns):
            slot = pattern * self.config.slots_per_pattern
            for src in names:
                probe.src = src
                for dst in all_names:
                    if dst == src:
                        continue
                    losses = 0
                    src_node = medium.node(src)
                    dst_node = medium.node(dst)
                    for _ in range(trials):
                        if medium.loss_model.lost(
                            src_node, dst_node, probe, slot, rng
                        ):
                            losses += 1
                    out[(src, dst, pattern)] = losses / trials
        return out
