"""Artificial interference: directional perimeter antennas and the
9-pattern rotation schedule.

The paper's interferers are 6 WARP boards with two directional antennas
each (3-dB beamwidth 22°), placed along the perimeter, switched so that
"at any point in time, one pair of antennas creates noise along a row,
while another pair creates noise along a column".  With a 3×3 grid that
yields 3 × 3 = 9 patterns, rotated once per time slot; every cell is
jammed in 5 of the 9 patterns (its row's 3 plus its column's 3, minus
the double-counted intersection), so *wherever Eve sits she is jammed
for 5/9 of the experiment* — the mechanism that guarantees her a minimum
miss fraction regardless of natural channel conditions.

We model each antenna as a cone: full power inside the half-beamwidth,
a flat side-lobe suppression outside.  A row is jammed by the pair of
antennas facing each other across it (likewise columns), which evens the
jamming power across the row's three cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.net.radio import RadioConfig, path_loss_db
from repro.testbed.geometry import TestbedGeometry

__all__ = [
    "InterfererAntenna",
    "NoisePattern",
    "InterferenceField",
    "build_interference_field",
]


@dataclass(frozen=True)
class InterfererAntenna:
    """One directional interference antenna.

    Attributes:
        position: (x, y) in metres.
        azimuth_rad: boresight direction.
        power_dbm: EIRP on boresight.
        beamwidth_deg: full 3-dB beamwidth (paper: 22°).
        sidelobe_suppression_db: attenuation outside the beam cone.
    """

    position: tuple
    azimuth_rad: float
    power_dbm: float
    beamwidth_deg: float = 22.0
    sidelobe_suppression_db: float = 25.0

    def gain_db_towards(self, target: tuple) -> float:
        """Antenna gain towards ``target`` relative to boresight."""
        dx = target[0] - self.position[0]
        dy = target[1] - self.position[1]
        if dx == 0.0 and dy == 0.0:
            return 0.0
        angle = math.atan2(dy, dx)
        delta = abs((angle - self.azimuth_rad + math.pi) % (2 * math.pi) - math.pi)
        half_beam = math.radians(self.beamwidth_deg / 2.0)
        if delta <= half_beam:
            return 0.0
        return -self.sidelobe_suppression_db

    def power_at_dbm(self, target: tuple, radio: RadioConfig) -> float:
        """Interference power this antenna lands on ``target``."""
        distance = math.hypot(
            target[0] - self.position[0], target[1] - self.position[1]
        )
        return (
            self.power_dbm
            + self.gain_db_towards(target)
            - path_loss_db(distance, radio)
        )


@dataclass(frozen=True)
class NoisePattern:
    """One schedule entry: a jammed row and a jammed column.

    ``antenna_ids`` are the four active antennas (the row pair and the
    column pair).
    """

    row: int
    col: int
    antenna_ids: tuple


@dataclass
class InterferenceField:
    """All antennas plus the rotating pattern schedule.

    ``slots_per_pattern`` controls how many transmission slots each
    pattern stays up before the schedule advances — the paper rotates
    through all 9 patterns within each experiment.
    """

    antennas: list
    patterns: list
    radio: RadioConfig
    slots_per_pattern: int = 10
    enabled: bool = True

    def pattern_at(self, slot: int) -> NoisePattern:
        index = (slot // max(self.slots_per_pattern, 1)) % len(self.patterns)
        return self.patterns[index]

    def interference_powers_dbm(self, position: tuple, slot: int) -> list:
        """Powers (dBm) each active antenna lands on ``position``."""
        if not self.enabled or not self.patterns:
            return []
        pattern = self.pattern_at(slot)
        return [
            self.antennas[i].power_at_dbm(position, self.radio)
            for i in pattern.antenna_ids
        ]

    def jammed_cells_for_pattern(self, geometry: TestbedGeometry, index: int) -> set:
        """Cells inside pattern ``index``'s row/column beams.

        Pure schedule geometry (ignores ``enabled``): the single source
        of truth for beam coverage, shared by the live :meth:`jammed_cells`
        query and precomputed tables like the interference-aware
        estimator's pattern-to-jammed-cell matrix.
        """
        pattern = self.patterns[index]
        return set(geometry.cells_in_row(pattern.row)) | set(
            geometry.cells_in_col(pattern.col)
        )

    def jammed_cells(self, geometry: TestbedGeometry, slot: int) -> set:
        """Cells inside the beams active at ``slot`` (diagnostics)."""
        if not self.enabled or not self.patterns:
            return set()
        index = (slot // max(self.slots_per_pattern, 1)) % len(self.patterns)
        return self.jammed_cells_for_pattern(geometry, index)

    def n_patterns(self) -> int:
        return len(self.patterns)


def build_interference_field(
    geometry: TestbedGeometry,
    radio: RadioConfig,
    power_dbm: float,
    margin_m: float = 0.3,
    slots_per_pattern: int = 10,
    beamwidth_deg: float = 22.0,
) -> InterferenceField:
    """Construct the paper's perimeter interferer layout.

    For each row: a pair of antennas facing each other from the west and
    east edges (offset ``margin_m`` outside the area); for each column: a
    pair from the south and north edges.  Pattern ``(r, c)`` activates
    row ``r``'s pair and column ``c``'s pair; all ``grid²`` patterns are
    scheduled in row-major order.
    """
    side = geometry.side_m
    grid = geometry.grid
    cell = geometry.cell_size_m
    antennas: list = []
    row_pairs: dict = {}
    col_pairs: dict = {}
    for r in range(grid):
        y = (r + 0.5) * cell
        west = InterfererAntenna(
            position=(-margin_m, y),
            azimuth_rad=0.0,
            power_dbm=power_dbm,
            beamwidth_deg=beamwidth_deg,
        )
        east = InterfererAntenna(
            position=(side + margin_m, y),
            azimuth_rad=math.pi,
            power_dbm=power_dbm,
            beamwidth_deg=beamwidth_deg,
        )
        row_pairs[r] = (len(antennas), len(antennas) + 1)
        antennas.extend([west, east])
    for c in range(grid):
        x = (c + 0.5) * cell
        south = InterfererAntenna(
            position=(x, -margin_m),
            azimuth_rad=math.pi / 2.0,
            power_dbm=power_dbm,
            beamwidth_deg=beamwidth_deg,
        )
        north = InterfererAntenna(
            position=(x, side + margin_m),
            azimuth_rad=-math.pi / 2.0,
            power_dbm=power_dbm,
            beamwidth_deg=beamwidth_deg,
        )
        col_pairs[c] = (len(antennas), len(antennas) + 1)
        antennas.extend([south, north])
    patterns = [
        NoisePattern(row=r, col=c, antenna_ids=row_pairs[r] + col_pairs[c])
        for r in range(grid)
        for c in range(grid)
    ]
    return InterferenceField(
        antennas=antennas,
        patterns=patterns,
        radio=radio,
        slots_per_pattern=slots_per_pattern,
    )
