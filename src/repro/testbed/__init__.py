"""The paper's §4 deployment, in simulation.

A 14 m² indoor area divided into a 3×3 grid of logical cells (the cell
diagonal is the paper's 1.75 m minimum distance), with:

* ``n = 3..8`` terminals and one eavesdropper, each occupying a distinct
  cell (:mod:`repro.testbed.placements` enumerates all 9·C(8,n)
  positionings, exactly the paper's experiment design),
* 12 directional interference antennas (six WARP-like dual-antenna
  nodes) on the perimeter, rotating through 9 noise patterns — one row
  plus one column of cells jammed per time slot
  (:mod:`repro.testbed.interference`),
* an 802.11g-like PHY at 1 Mbps (:mod:`repro.net.radio`) wired into a
  :class:`~repro.net.medium.BroadcastMedium` by
  :mod:`repro.testbed.deployment`,
* an analytic slot-aware bridge to the batched engine
  (:mod:`repro.testbed.pertable`): per-(pattern, tx, rx) mean-SINR
  tables with the Rayleigh-faded PER integrated by fixed quadrature,
  feeding :class:`~repro.sim.spec.ScheduleLossSpec` — no Monte-Carlo
  link probing, and the rotating schedule's burstiness survives.
"""

from repro.testbed.deployment import PhysicalLossModel, Testbed, TestbedConfig
from repro.testbed.geometry import TestbedGeometry
from repro.testbed.interference import (
    InterferenceField,
    InterfererAntenna,
    NoisePattern,
    build_interference_field,
)
from repro.testbed.estimator import (
    InterferenceAwareEstimator,
    calibrate_min_jam_loss,
)
from repro.testbed.pertable import (
    pattern_mean_sinr_db,
    placement_schedule_specs,
    schedule_loss_table,
)
from repro.testbed.placements import (
    Placement,
    enumerate_placements,
    placement_count,
    sample_placements,
)

__all__ = [
    "TestbedGeometry",
    "InterfererAntenna",
    "NoisePattern",
    "InterferenceField",
    "build_interference_field",
    "TestbedConfig",
    "Testbed",
    "PhysicalLossModel",
    "InterferenceAwareEstimator",
    "calibrate_min_jam_loss",
    "pattern_mean_sinr_db",
    "schedule_loss_table",
    "placement_schedule_specs",
    "Placement",
    "enumerate_placements",
    "sample_placements",
    "placement_count",
]
