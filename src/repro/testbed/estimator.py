"""The artificial-interference estimator (§3.3, first idea).

"We can use especially crafted interference that causes Eve to miss some
minimum fraction of the packets shared by Alice and Bob, independently
from the naturally occurring channel conditions."

The interference schedule is public and position-oblivious: *whatever
cell Eve occupies*, the rotating row+column beams cover her for the
patterns crossing that cell, and while covered she loses at least
``min_jam_loss`` of the packets (a property of interferer power and
geometry, calibrated once per deployment — see
:meth:`calibrate_min_jam_loss`).

For a packet set ``I`` the certified budget is therefore::

    min over candidate cells e of
        min_jam_loss * |{ i in I : pattern(slot_i) jams cell e }|

minus a binomial concentration margin.  Because the bound quantifies
over *every* cell Eve could occupy and conditions only on the public
schedule — never on what terminals received — it has no selection bias,
unlike naive leave-one-out counting (see
:class:`repro.core.estimator.LeaveOneOutEstimator`'s discussion).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.estimator import EveErasureEstimator
from repro.net.packet import Packet, PacketKind
from repro.testbed.deployment import Testbed
from repro.testbed.geometry import TestbedGeometry
from repro.testbed.interference import InterferenceField

__all__ = ["InterferenceAwareEstimator", "calibrate_min_jam_loss"]


class InterferenceAwareEstimator(EveErasureEstimator):
    """Budget = guaranteed in-beam misses, minimised over Eve's possible cells.

    Args:
        field: the deployment's interference field (public schedule).
        geometry: the cell grid.
        min_jam_loss: certified lower bound on the loss probability of a
            receiver inside an active beam (from calibration).
        candidate_cells: cells Eve might occupy; defaults to all cells
            (the protocol cannot know which cell is hers).
        discount: multiplicative conservatism on the certified rate (the
            budget must stay linear in the query size so the allocation
            LP can reason about small cells; concentration safety comes
            from this discount plus phase-2 secrecy slack).
    """

    def __init__(
        self,
        field: InterferenceField,
        geometry: TestbedGeometry,
        min_jam_loss: float,
        candidate_cells: Optional[Sequence[int]] = None,
        discount: float = 0.9,
    ) -> None:
        if not 0.0 <= min_jam_loss <= 1.0:
            raise ValueError("min_jam_loss must be in [0, 1]")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.field = field
        self.geometry = geometry
        self.min_jam_loss = min_jam_loss
        self.candidate_cells = (
            list(candidate_cells)
            if candidate_cells is not None
            else geometry.all_cells()
        )
        self.discount = discount
        # Pattern -> jammed-cell table, precomputed once: the schedule
        # is static, so a budget query only needs each queried slot's
        # pattern index and a bincount instead of rebuilding a jammed
        # set per (candidate cell, x-id) pair.
        self._jam_table = np.zeros(
            (len(field.patterns), geometry.n_cells), dtype=float
        )
        for k in range(len(field.patterns)):
            cells = field.jammed_cells_for_pattern(geometry, k)
            self._jam_table[k, sorted(cells)] = 1.0
        self._candidate_index = np.asarray(self.candidate_cells, dtype=np.intp)

    def budget(self, ids: Sequence[int], exclude: frozenset = frozenset()) -> float:
        ctx = self.context
        if ctx.x_slots is None:
            return 0.0
        p = self.min_jam_loss
        if p <= 0.0 or not self.candidate_cells:
            return 0.0
        field = self.field
        n_patterns = len(field.patterns)
        if not field.enabled or n_patterns == 0:
            return 0.0
        dwell = max(field.slots_per_pattern, 1)
        pattern_ids = [
            (slot // dwell) % n_patterns
            for slot in (ctx.x_slots.get(xid) for xid in ids)
            if slot is not None
        ]
        if not pattern_ids:
            return 0.0
        hits = np.bincount(pattern_ids, minlength=n_patterns)
        jammed = hits @ self._jam_table[:, self._candidate_index]
        return max(p * self.discount * float(jammed.min()), 0.0)


def calibrate_min_jam_loss(
    testbed: Testbed,
    rng: np.random.Generator,
    payload_bytes: int = 100,
    trials: int = 400,
    quantile_discount: float = 0.9,
) -> float:
    """Measure the smallest in-beam loss probability across the grid.

    For every (cell, jamming pattern that covers it, representative
    transmitter cell) the loss rate is Monte-Carlo sampled; the minimum
    over all combinations, discounted by ``quantile_discount``, is a
    defensible ``min_jam_loss`` for this deployment.  Deployments would
    do the same with a site survey.
    """
    from repro.net.node import Terminal  # late import to avoid cycles

    geometry = testbed.config.geometry
    field = testbed.interference
    packet = Packet(
        kind=PacketKind.X_DATA,
        src="probe",
        payload=np.zeros(payload_bytes, dtype=np.uint8),
    )
    loss_model = testbed_loss_model(testbed)
    worst: Optional[float] = None
    for rx_cell in geometry.all_cells():
        rx_pos = geometry.cell_center(rx_cell)
        dst = Terminal(name="rx", position=rx_pos)
        for pattern_idx in range(field.n_patterns()):
            slot = pattern_idx * field.slots_per_pattern
            if rx_cell not in field.jammed_cells(geometry, slot):
                continue
            for tx_cell in geometry.all_cells():
                if tx_cell == rx_cell:
                    continue
                src = Terminal(name="tx", position=geometry.cell_center(tx_cell))
                losses = sum(
                    1
                    for _ in range(trials)
                    if loss_model.lost_at(src, rx_pos, dst, packet, slot, rng)
                )
                rate = losses / trials
                worst = rate if worst is None else min(worst, rate)
    return (worst or 0.0) * quantile_discount


def testbed_loss_model(testbed: Testbed):
    """The deployment's physical loss model (shared helper)."""
    from repro.testbed.deployment import PhysicalLossModel

    return PhysicalLossModel(testbed.config, testbed.interference)
