"""Placement enumeration: the paper's experiment design.

"We run one such experiment for each possible positioning of n terminals
and Eve" — Eve takes one of the 9 cells, the terminals occupy n of the
remaining 8, at most one node per cell.  That is ``9 * C(8, n)``
placements per group size; :func:`enumerate_placements` yields exactly
those, deterministically ordered, and :func:`sample_placements` draws a
reproducible subset for quick runs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Placement", "enumerate_placements", "sample_placements", "placement_count"]


@dataclass(frozen=True)
class Placement:
    """One positioning: Eve's cell plus the terminals' cells (sorted)."""

    eve_cell: int
    terminal_cells: tuple

    def __post_init__(self) -> None:
        if self.eve_cell in self.terminal_cells:
            raise ValueError("Eve and a terminal cannot share a cell")
        if len(set(self.terminal_cells)) != len(self.terminal_cells):
            raise ValueError("terminals must occupy distinct cells")

    @property
    def n_terminals(self) -> int:
        return len(self.terminal_cells)


def enumerate_placements(n_terminals: int, n_cells: int = 9):
    """Yield every (Eve cell, terminal cells) assignment.

    Args:
        n_terminals: group size n (the paper sweeps 3..8).
        n_cells: total cells (9 for the paper's grid).

    Yields:
        :class:`Placement` in deterministic lexicographic order.
    """
    if not 1 <= n_terminals <= n_cells - 1:
        raise ValueError(
            f"n_terminals must be in [1, {n_cells - 1}], got {n_terminals}"
        )
    for eve_cell in range(n_cells):
        others = [c for c in range(n_cells) if c != eve_cell]
        for combo in itertools.combinations(others, n_terminals):
            yield Placement(eve_cell=eve_cell, terminal_cells=tuple(combo))


def placement_count(n_terminals: int, n_cells: int = 9) -> int:
    """``n_cells * C(n_cells - 1, n_terminals)`` — the campaign size."""
    return n_cells * math.comb(n_cells - 1, n_terminals)


def sample_placements(
    n_terminals: int,
    k: int,
    rng: np.random.Generator,
    n_cells: int = 9,
) -> list:
    """Draw ``k`` distinct placements uniformly (reproducible via rng).

    Returns all placements when ``k`` exceeds the population size.
    """
    population = list(enumerate_placements(n_terminals, n_cells))
    if k >= len(population):
        return population
    indices = rng.choice(len(population), size=k, replace=False)
    return [population[i] for i in sorted(indices)]
