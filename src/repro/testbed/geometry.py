"""Testbed geometry: the 3×3 cell grid over a 14 m² square area.

The paper states the testbed covers 14 m², is divided into 9 logical
cells, and that the minimum separation between nodes — 1.75 m — equals
the diagonal of a cell.  A square 14 m² area split 3×3 gives cells of
side ``sqrt(14)/3 ≈ 1.247 m`` and diagonal ``≈ 1.764 m``: the numbers
fit, so this is the geometry we implement (a regression test pins the
diagonal to the paper's figure within a centimetre).

Cells are indexed row-major: cell ``k`` sits at row ``k // 3`` and
column ``k % 3``; ``(0, 0)`` is the south-west corner of the area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TestbedGeometry"]


@dataclass(frozen=True)
class TestbedGeometry:
    """The square testbed area and its logical cell grid.

    Args:
        area_m2: total covered area (paper: 14 m²).
        grid: cells per side (paper: 3).
    """

    area_m2: float = 14.0
    grid: int = 3

    def __post_init__(self) -> None:
        if self.area_m2 <= 0:
            raise ValueError("area must be positive")
        if self.grid < 1:
            raise ValueError("grid must have at least one cell per side")

    @property
    def side_m(self) -> float:
        """Side length of the square area."""
        return math.sqrt(self.area_m2)

    @property
    def cell_size_m(self) -> float:
        """Side length of one logical cell."""
        return self.side_m / self.grid

    @property
    def cell_diagonal_m(self) -> float:
        """The paper's minimum node separation (1.75 m for defaults)."""
        return self.cell_size_m * math.sqrt(2.0)

    @property
    def n_cells(self) -> int:
        return self.grid * self.grid

    def row_of(self, cell: int) -> int:
        self._check(cell)
        return cell // self.grid

    def col_of(self, cell: int) -> int:
        self._check(cell)
        return cell % self.grid

    def cell_center(self, cell: int) -> tuple:
        """Centre coordinates (x, y) of a cell in metres."""
        self._check(cell)
        row, col = self.row_of(cell), self.col_of(cell)
        half = self.cell_size_m / 2.0
        return (col * self.cell_size_m + half, row * self.cell_size_m + half)

    def cells_in_row(self, row: int) -> list:
        if not 0 <= row < self.grid:
            raise ValueError(f"row {row} out of range")
        return [row * self.grid + c for c in range(self.grid)]

    def cells_in_col(self, col: int) -> list:
        if not 0 <= col < self.grid:
            raise ValueError(f"col {col} out of range")
        return [r * self.grid + col for r in range(self.grid)]

    def all_cells(self) -> list:
        return list(range(self.n_cells))

    def distance(self, cell_a: int, cell_b: int) -> float:
        ax, ay = self.cell_center(cell_a)
        bx, by = self.cell_center(cell_b)
        return math.hypot(ax - bx, ay - by)

    def _check(self, cell: int) -> None:
        if not 0 <= cell < self.n_cells:
            raise ValueError(f"cell {cell} out of range [0, {self.n_cells})")
