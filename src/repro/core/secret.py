"""Secret containers: the group secret and the refreshable key pool.

The paper's motivating use case (§1) is continuous key refresh: secrets
generated "out of thin air" feed a pool from which session keys and
one-time pads are drawn, with no long-lived material to steal.
:class:`SecretPool` implements that consumption model; the
:mod:`repro.auth` extension draws its MAC keys from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GroupSecret", "SecretPool"]


@dataclass(frozen=True)
class GroupSecret:
    """An agreed secret: L packets of payload_bytes symbols."""

    packets: np.ndarray  # (L, payload_bytes) uint8

    def __post_init__(self) -> None:
        arr = np.asarray(self.packets, dtype=np.uint8)
        if arr.ndim != 2:
            raise ValueError("secret packets must form a 2-D array")
        object.__setattr__(self, "packets", arr)

    @property
    def n_packets(self) -> int:
        return int(self.packets.shape[0])

    @property
    def n_bits(self) -> int:
        return int(self.packets.size) * 8

    def to_bytes(self) -> bytes:
        return self.packets.tobytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupSecret):
            return NotImplemented
        return self.packets.shape == other.packets.shape and bool(
            np.all(self.packets == other.packets)
        )

    def __hash__(self) -> int:
        return hash((self.packets.shape, self.packets.tobytes()))


@dataclass
class SecretPool:
    """FIFO pool of secret bytes with strict one-time consumption.

    Bytes handed out by :meth:`consume` are discarded — they can never be
    issued twice, which is what makes pads and Carter-Wegman MAC keys
    drawn from the pool information-theoretically safe to use once.
    """

    _buffer: bytearray = field(default_factory=bytearray)
    consumed_bytes: int = 0

    @property
    def available_bytes(self) -> int:
        return len(self._buffer)

    def deposit(self, secret: GroupSecret) -> None:
        """Fold a freshly agreed secret into the pool."""
        self._buffer.extend(secret.to_bytes())

    def deposit_raw(self, data: bytes) -> None:
        self._buffer.extend(data)

    def consume(self, n_bytes: int) -> bytes:
        """Withdraw ``n_bytes``; raises when the pool runs dry.

        Raises:
            KeyError-like LookupError: if fewer bytes remain — callers
            must check :attr:`available_bytes` or agree more secrets.
        """
        if n_bytes < 0:
            raise ValueError("cannot consume a negative amount")
        if n_bytes > len(self._buffer):
            raise LookupError(
                f"pool has {len(self._buffer)} bytes, {n_bytes} requested"
            )
        out = bytes(self._buffer[:n_bytes])
        del self._buffer[:n_bytes]
        self.consumed_bytes += n_bytes
        return out

    def one_time_pad(self, message: bytes) -> bytes:
        """Encrypt (or decrypt) a message with pool bytes, consuming them."""
        pad = self.consume(len(message))
        return bytes(m ^ p for m, p in zip(message, pad))
