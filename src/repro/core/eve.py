"""Exact leakage accounting: what does Eve know about the secret?

The paper's reliability metric: *reliability r means Eve can correctly
guess each bit of the shared group secret with probability 2^-r*.  In
our linear-algebraic setting this is an exact computation, not an
estimate.  Everything Eve knows about one round is linear in the round's
x-payload symbols:

* a unit row per x-packet she captured (she knows those symbols),
* the z-map rows (she hears every reliably-broadcast z-content — the
  paper's conservative assumption),
* all combination *identities* (descriptor broadcasts), i.e. the
  matrices themselves.

Conditioning on her known symbols deletes their columns; over the
remaining (Eve-missed) columns ``D`` the secret's conditional entropy in
field symbols per payload position is::

    hidden = rank([Z_D; S_D]) - rank(Z_D)

and reliability is ``hidden / L``.  ``r = 1`` means the secret is
uniform given everything Eve saw; ``r = 0`` means she can reconstruct it
outright.  The rank identity and the per-bit guessing interpretation are
exercised by a Monte-Carlo cross-check in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.coding.privacy import GroupCodingPlan, YAllocation
from repro.gf.linalg import GFMatrix

__all__ = ["LeakageReport", "round_leakage", "stacked_secret_maps"]


@dataclass(frozen=True)
class LeakageReport:
    """Exact secrecy outcome of one round.

    Attributes:
        secret_dims: L — group-secret length in packets.
        hidden_dims: how many of those packets remain fully unknown to
            Eve (conditional entropy in packet units).
        eve_missed: how many x-packets Eve actually missed.
    """

    secret_dims: int
    hidden_dims: int
    eve_missed: int

    @property
    def leaked_dims(self) -> int:
        return self.secret_dims - self.hidden_dims

    @property
    def reliability(self) -> float:
        """The paper's r; 1.0 for an empty secret (nothing to leak)."""
        if self.secret_dims == 0:
            return 1.0
        return self.hidden_dims / self.secret_dims

    @property
    def perfect(self) -> bool:
        return self.hidden_dims == self.secret_dims


def stacked_secret_maps(
    allocation: YAllocation, plan: GroupCodingPlan, all_x_ids: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """(Z·G, S·G): the x-to-z and x-to-s linear maps, stacked over chunks.

    ``G`` is the global y-map; columns follow ``all_x_ids`` order.
    """
    g = allocation.global_matrix(all_x_ids)
    z_rows = []
    s_rows = []
    for chunk in plan.chunks:
        g_chunk = g.take_rows(list(chunk.y_rows))
        if chunk.n_public:
            z_rows.append((chunk.z_matrix @ g_chunk).data)
        if chunk.n_secret:
            s_rows.append((chunk.s_matrix @ g_chunk).data)
    n_cols = len(all_x_ids)
    z_map = GFMatrix(np.vstack(z_rows)) if z_rows else GFMatrix.zeros(0, n_cols)
    s_map = GFMatrix(np.vstack(s_rows)) if s_rows else GFMatrix.zeros(0, n_cols)
    return z_map, s_map


def round_leakage(
    allocation: YAllocation,
    plan: GroupCodingPlan,
    eve_received_ids: FrozenSet[int],
    all_x_ids: Sequence[int],
) -> LeakageReport:
    """Compute Eve's exact uncertainty about one round's secret.

    Args:
        allocation: the round's y-plan (public identities).
        plan: the round's z/s maps (public identities).
        eve_received_ids: x-ids Eve captured over the air.
        all_x_ids: every x-id the leader transmitted this round.

    Returns:
        :class:`LeakageReport` with exact hidden/leaked dimensions.
    """
    z_map, s_map = stacked_secret_maps(allocation, plan, all_x_ids)
    missed_cols = [
        j for j, xid in enumerate(all_x_ids) if xid not in eve_received_ids
    ]
    secret_dims = s_map.rows
    if secret_dims == 0:
        return LeakageReport(0, 0, len(missed_cols))
    if not missed_cols:
        # Eve saw every x-packet: the whole secret is computable.
        return LeakageReport(secret_dims, 0, 0)
    z_d = z_map.take_cols(missed_cols)
    s_d = s_map.take_cols(missed_cols)
    hidden = z_d.vstack(s_d).rank() - z_d.rank()
    return LeakageReport(secret_dims, hidden, len(missed_cols))
