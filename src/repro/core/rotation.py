"""Leader rotation: terminals take turns playing Alice (§3.2).

The paper's worst case — Eve overhearing everything some terminal
received — is defused by rotating the leader role: "make each terminal
receive information through multiple different channels", so Eve would
have to match every terminal's channel simultaneously.  An *experiment*
in the paper runs one protocol execution per placement; we follow suit,
rotating the leader across all terminals within the experiment and
concatenating the per-round group secrets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.estimator import EveErasureEstimator
from repro.core.metrics import ExperimentMetrics
from repro.core.session import ProtocolSession, RoundResult, SessionConfig
from repro.net.medium import BroadcastMedium

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Outcome of a full rotated experiment."""

    rounds: List[RoundResult]
    metrics: ExperimentMetrics

    @property
    def group_secret(self) -> np.ndarray:
        """Concatenated secret packets across rounds (K, payload_bytes)."""
        pieces = [r.secret for r in self.rounds if r.secret.size]
        if not pieces:
            return np.zeros((0, 0), dtype=np.uint8)
        return np.vstack(pieces)

    @property
    def secret_bits(self) -> int:
        return sum(r.secret_bits for r in self.rounds)

    @property
    def reliability(self) -> float:
        return self.metrics.reliability

    @property
    def efficiency(self) -> float:
        return self.metrics.efficiency


def run_experiment(
    medium: BroadcastMedium,
    terminal_names: Sequence[str],
    estimator: EveErasureEstimator,
    rng: np.random.Generator,
    config: Optional[SessionConfig] = None,
    leaders: Optional[Sequence[str]] = None,
    eve_name: Optional[str] = "eve",
    bitrate_bps: float = 1e6,
) -> ExperimentResult:
    """Run one experiment: a full leader rotation on a fixed placement.

    Args:
        medium: broadcast domain with the nodes already placed.
        terminal_names: the group.
        estimator: Eve-erasure estimator shared by all leaders.
        rng: payload randomness.
        config: protocol parameters.
        leaders: leader order; defaults to every terminal once.
        eve_name: eavesdropper node name (None to skip leakage).
        bitrate_bps: PHY rate for the kbps figure (paper: 1 Mbps).

    Returns:
        :class:`ExperimentResult` with per-round details and aggregate
        metrics computed over the experiment's entire ledger.
    """
    session = ProtocolSession(
        medium, terminal_names, estimator, rng, config=config, eve_name=eve_name
    )
    if leaders is None:
        leaders = list(terminal_names)
    rounds = [
        session.run_round(leader, round_id=k) for k, leader in enumerate(leaders)
    ]
    secret_bits = sum(r.secret_bits for r in rounds)
    metrics = ExperimentMetrics.compute(
        [r.leakage for r in rounds],
        secret_bits,
        medium.ledger,
        bitrate_bps=bitrate_bps,
    )
    return ExperimentResult(rounds=rounds, metrics=metrics)
