"""Control-message wire formats (for exact cost accounting).

The simulation passes Python objects between parties, but every control
message still occupies airtime, and the efficiency metric divides by
*total transmitted bits* — so each message computes the size its natural
serialisation would occupy.  Formats are deliberately simple (no
compression), erring on the side of charging the protocol more:

* **Reception report**: round id (2 B) + packet count (2 B) + a bitmap
  of received x-ids (⌈N/8⌉ B).
* **Block descriptor**: the identities of the x-packets used in each
  y-combination.  Per block: subset bitmap (2 B), row count (1 B),
  family tag + offset (2 B), support length (2 B) + 2 B per support id.
  The Cauchy family is deterministic given (rows, support length), so
  coefficients never travel — only identities, exactly as in the paper.
* **Phase-2 descriptor**: per chunk, the chunk length (2 B) and secret
  count (2 B); the z/s Cauchy maps are again implied.
* **z-content packets** carry their payload plus a 4 B (chunk, row) tag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Sequence, Tuple

if TYPE_CHECKING:
    from repro.coding.privacy import GroupCodingPlan, YAllocation

__all__ = [
    "ReceptionReport",
    "BlockDescriptorSet",
    "Phase2Descriptor",
    "z_content_overhead_bytes",
]


@dataclass(frozen=True)
class ReceptionReport:
    """Terminal -> group: which x-packets of this round arrived."""

    round_id: int
    terminal: str
    received_ids: FrozenSet[int]
    n_packets: int

    def body_bytes(self) -> int:
        return 2 + 2 + math.ceil(self.n_packets / 8)


@dataclass(frozen=True)
class BlockDescriptorSet:
    """Leader -> group: identities of every y-combination.

    ``blocks`` is the :class:`~repro.coding.privacy.YAllocation` blocks
    list; only identity information is charged (and, per the paper's
    conservative model, Eve learns all of it).
    """

    round_id: int
    supports: Tuple[Tuple[int, ...], ...]  # per-block support-id tuples
    rows: Tuple[int, ...]  # per-block row counts

    @classmethod
    def from_allocation(
        cls, round_id: int, allocation: "YAllocation"
    ) -> "BlockDescriptorSet":
        return cls(
            round_id=round_id,
            supports=tuple(tuple(b.support) for b in allocation.blocks),
            rows=tuple(b.rows for b in allocation.blocks),
        )

    def body_bytes(self) -> int:
        total = 2  # round id
        for support in self.supports:
            total += 2 + 1 + 2 + 2  # subset bitmap, rows, family, length
            total += 2 * len(support)
        return total


@dataclass(frozen=True)
class Phase2Descriptor:
    """Leader -> group: chunk structure of the z/s maps."""

    round_id: int
    chunk_sizes: Tuple[int, ...]
    secret_counts: Tuple[int, ...]

    @classmethod
    def from_plan(
        cls, round_id: int, plan: "GroupCodingPlan"
    ) -> "Phase2Descriptor":
        return cls(
            round_id=round_id,
            chunk_sizes=tuple(c.size for c in plan.chunks),
            secret_counts=tuple(c.n_secret for c in plan.chunks),
        )

    def body_bytes(self) -> int:
        return 2 + 4 * len(self.chunk_sizes)


def z_content_overhead_bytes() -> int:
    """Per-z-packet tag: chunk index (2 B) + row index (2 B)."""
    return 4
