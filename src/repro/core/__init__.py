"""The paper's contribution: the group secret-agreement protocol.

Modules:

* :mod:`repro.core.messages` — wire-format sizing for every control
  message (reception reports, combination descriptors), feeding the
  efficiency metric's denominator.
* :mod:`repro.core.estimator` — the §3.3 estimators of what Eve missed:
  oracle (ground truth), fixed-fraction (the interference guarantee),
  leave-one-out ("pretend each terminal is Eve") and its k-collusion
  generalisation.
* :mod:`repro.core.session` — one protocol round: phase 1 (x-packets,
  feedback, y-construction) and phase 2 (z-redistribution, s-extraction).
* :mod:`repro.core.rotation` — terminals take turns as leader, the
  paper's defence against the worst-case scenario.
* :mod:`repro.core.eve` — exact leakage accounting: Eve's conditional
  entropy about the secret, via GF(2^8) ranks.
* :mod:`repro.core.metrics` — the paper's two metrics: efficiency and
  reliability.
* :mod:`repro.core.secret` — secret containers and the refreshable pool.
"""

from repro.core.estimator import (
    CollusionEstimator,
    CombinedEstimator,
    NaiveLeaveOneOutEstimator,
    EveErasureEstimator,
    FixedFractionEstimator,
    LeaveOneOutEstimator,
    OracleEstimator,
    RoundContext,
)
from repro.core.eve import LeakageReport, round_leakage
from repro.core.metrics import ExperimentMetrics, efficiency, reliability
from repro.core.refresh import EpochReport, RefreshingGroup
from repro.core.rotation import ExperimentResult, run_experiment
from repro.core.secret import GroupSecret, SecretPool
from repro.core.session import ProtocolSession, RoundResult, SessionConfig

__all__ = [
    "EveErasureEstimator",
    "OracleEstimator",
    "FixedFractionEstimator",
    "LeaveOneOutEstimator",
    "CollusionEstimator",
    "NaiveLeaveOneOutEstimator",
    "CombinedEstimator",
    "RoundContext",
    "ProtocolSession",
    "SessionConfig",
    "RoundResult",
    "run_experiment",
    "ExperimentResult",
    "round_leakage",
    "LeakageReport",
    "efficiency",
    "reliability",
    "ExperimentMetrics",
    "GroupSecret",
    "SecretPool",
    "RefreshingGroup",
    "EpochReport",
]
