"""Continuous key refresh: the paper's §1 deployment story as an API.

"These continuously generated shared secrets would not rely on any
information permanently stored in Alice's or Bob's machines" — a group
keeps executing the protocol in the background, every agreed secret
flows into a pool, and applications draw one-time pads and one-time MAC
keys from it.  :class:`RefreshingGroup` packages that loop: construct it
over a medium, call :meth:`refresh_epoch` whenever more key material is
wanted, and use :meth:`encrypt` / :meth:`authenticate` (with their
matching verifiers on other members' instances) in between.

Every member holds an identical pool because the protocol guarantees an
identical secret and deposits are made in epoch order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.auth.bootstrap import AuthenticatedChannel
from repro.core.estimator import EveErasureEstimator
from repro.core.rotation import ExperimentResult, run_experiment
from repro.core.secret import GroupSecret, SecretPool
from repro.core.session import SessionConfig
from repro.net.medium import BroadcastMedium

__all__ = ["EpochReport", "RefreshingGroup"]


@dataclass(frozen=True)
class EpochReport:
    """Outcome of one refresh epoch."""

    epoch: int
    secret_bits: int
    reliability: float
    efficiency: float
    pool_bytes_after: int


@dataclass
class RefreshingGroup:
    """One member's view of a continuously re-keyed group.

    Args:
        medium: the broadcast domain shared by the group.
        terminal_names: the group members.
        estimator: Eve-erasure estimator used by every epoch.
        rng: randomness for protocol payloads.
        config: per-epoch protocol parameters.
        bootstrap: optional initial secret (enables authentication before
            the first epoch completes, as §2 requires for active Eves).

    Note:
        The simulation runs all members' protocol stacks in one process,
        so a single instance models the whole group's synchronized pool;
        :meth:`peer_view` clones an independent pool to emulate another
        member for end-to-end checks.
    """

    medium: BroadcastMedium
    terminal_names: Sequence[str]
    estimator: EveErasureEstimator
    rng: np.random.Generator
    config: SessionConfig = field(default_factory=SessionConfig)
    bootstrap: Optional[bytes] = None
    minimum_reliability: float = 1.0

    def __post_init__(self) -> None:
        self.pool = SecretPool()
        self.channel: Optional[AuthenticatedChannel] = None
        if self.bootstrap is not None:
            self.channel = AuthenticatedChannel.from_bootstrap(self.bootstrap)
        self._epoch = 0
        self.history: List[EpochReport] = []

    # -- key generation --------------------------------------------------

    def refresh_epoch(self) -> EpochReport:
        """Run one full protocol execution and absorb its secret.

        Secrets from epochs whose measured reliability falls below
        ``minimum_reliability`` are *discarded* (deposited nowhere):
        partially leaked material must never enter the pad pool.
        """
        result: ExperimentResult = run_experiment(
            self.medium,
            self.terminal_names,
            self.estimator,
            self.rng,
            config=self.config,
        )
        accepted = result.reliability >= self.minimum_reliability
        if accepted and result.secret_bits > 0:
            secret = GroupSecret(result.group_secret)
            self.pool.deposit(secret)
            if self.channel is not None:
                self.channel.refresh(secret)
        report = EpochReport(
            epoch=self._epoch,
            secret_bits=result.secret_bits if accepted else 0,
            reliability=result.reliability,
            efficiency=result.efficiency,
            pool_bytes_after=self.pool.available_bytes,
        )
        self._epoch += 1
        self.history.append(report)
        return report

    def ensure_bytes(self, n_bytes: int, max_epochs: int = 32) -> None:
        """Refresh until the pool holds at least ``n_bytes``.

        Raises:
            RuntimeError: if ``max_epochs`` refreshes cannot fill the
            pool (dead channels or a zero-certifying estimator).
        """
        epochs = 0
        while self.pool.available_bytes < n_bytes:
            if epochs >= max_epochs:
                raise RuntimeError(
                    f"pool stuck at {self.pool.available_bytes} bytes "
                    f"after {epochs} epochs (need {n_bytes})"
                )
            self.refresh_epoch()
            epochs += 1

    # -- key consumption --------------------------------------------------

    def encrypt(self, message: bytes) -> bytes:
        """One-time-pad ``message`` with pool bytes (consumed forever)."""
        return self.pool.one_time_pad(message)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Identical to :meth:`encrypt` — XOR pads are symmetric; call on
        a synchronized peer instance."""
        return self.pool.one_time_pad(ciphertext)

    def authenticate(self, message: bytes) -> bytes:
        """Tag a control message with a one-time MAC key from the pool."""
        if self.channel is None:
            raise RuntimeError("no bootstrap: authentication unavailable")
        return self.channel.authenticate(message)

    def verify_next(self, message: bytes, tag: bytes) -> bool:
        if self.channel is None:
            raise RuntimeError("no bootstrap: authentication unavailable")
        return self.channel.verify_next(message, tag)

    # -- testing aid -------------------------------------------------------

    def peer_view(self) -> "SecretPool":
        """An independent pool with identical contents (another member)."""
        clone = SecretPool()
        clone.deposit_raw(bytes(self.pool._buffer))
        return clone
