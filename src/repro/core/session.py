"""One protocol round: both phases, end to end, on a broadcast medium.

:class:`ProtocolSession` orchestrates the paper's §3 algorithm:

Phase 1 (pair-wise secrets)
    1. The leader ("Alice") transmits N x-packets of random symbols.
    2. Every other terminal reliably broadcasts a reception report.
    3. The leader plans the y-combinations (via
       :func:`repro.coding.privacy.plan_y_allocation`, budgeted by the
       configured estimator) and reliably broadcasts their *identities*.
    4. Each terminal reconstructs the y-packets its report entitles it to.

Phase 2 (group secret)
    1. The leader reliably broadcasts the *contents* of the z-packets
       (and the phase-2 descriptor).
    2. Each terminal solves for its missing y-packets.
    3. The s-identities are implicit in the descriptor; every terminal
       applies the s-map.
    4. All terminals now hold the same L s-packets: the group secret.

The session runs all parties honestly but keeps their information sets
separate: terminals decode exclusively from their own receptions plus
broadcast identities, and a defensive check verifies every terminal
derived the identical secret.  Eve's knowledge is *accounted*, not
simulated: every reliably broadcast byte is assumed heard by her (the
paper's conservative model) and her over-the-air captures are recorded
by the medium, feeding :func:`repro.core.eve.round_leakage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coding.privacy import (
    GroupCodingPlan,
    YAllocation,
    build_phase2_matrices,
    plan_y_allocation,
)
from repro.coding.reconcile import (
    assemble_secret,
    decode_y_from_x,
    recover_missing_y,
)
from repro.core.estimator import EveErasureEstimator, RoundContext
from repro.core.eve import LeakageReport, round_leakage
from repro.core.messages import (
    BlockDescriptorSet,
    Phase2Descriptor,
    ReceptionReport,
    z_content_overhead_bytes,
)
from repro.gf.linalg import GFMatrix
from repro.net.medium import BroadcastMedium
from repro.net.node import Eavesdropper, Terminal
from repro.net.packet import Packet, PacketKind
from repro.net.reliable import reliable_broadcast

__all__ = ["SessionConfig", "RoundResult", "ProtocolSession", "ProtocolError"]


class ProtocolError(RuntimeError):
    """An invariant the protocol guarantees was violated."""


@dataclass(frozen=True)
class SessionConfig:
    """Per-session protocol parameters.

    Attributes:
        n_x_packets: N, x-packets per round (paper example: tens to
            hundreds; default chosen so one round rotates through all 9
            interference patterns at the testbed's default dwell).
        payload_bytes: symbols per packet (paper: 100 bytes = 800 bits).
        max_attempts: reliable-broadcast retry bound.
    """

    n_x_packets: int = 90
    payload_bytes: int = 100
    max_attempts: int = 400
    #: Cap on combination-block decodable-set size; None = unrestricted.
    #: Empirical estimators prefer small caps (see the estimator
    #: granularity ablation), schedule-based ones handle any order.
    max_subset_size: Optional[int] = None
    #: Secret dimensions withheld per phase-2 chunk to absorb estimator
    #: error (see repro.coding.privacy.build_phase2_matrices).
    secrecy_slack: int = 0
    #: Idle slots before each reliable-broadcast retry, letting rotating
    #: interference dwells pass (free in the bit-count metric).
    control_backoff_slots: int = 5
    #: Relative airtime cost of one z-packet in the allocation objective.
    z_cost_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.n_x_packets < 1:
            raise ValueError("need at least one x-packet")
        if self.payload_bytes < 1:
            raise ValueError("payloads must be non-empty")


@dataclass
class RoundResult:
    """Everything observable about one completed round."""

    leader: str
    round_id: int
    n_x_packets: int
    reports: Dict[str, Set[int]]
    allocation: YAllocation
    plan: GroupCodingPlan
    secret: np.ndarray  # (L, payload_bytes)
    leakage: LeakageReport
    eve_received_ids: FrozenSet[int]

    @property
    def secret_packets(self) -> int:
        return int(self.secret.shape[0])

    @property
    def secret_bits(self) -> int:
        return int(self.secret.size) * 8


class ProtocolSession:
    """Runs protocol rounds for a fixed group on a fixed medium.

    Args:
        medium: the broadcast domain (terminals + at most one Eve).
        terminal_names: the group, in a stable order.
        estimator: the Eve-erasure estimator (§3.3).
        rng: randomness for payload generation (channel randomness lives
            in the medium's rng; they may be the same generator).
        config: protocol parameters.
        eve_name: the eavesdropper's node name, or None when the medium
            has no Eve (pure functionality tests).
    """

    def __init__(
        self,
        medium: BroadcastMedium,
        terminal_names: Sequence[str],
        estimator: EveErasureEstimator,
        rng: np.random.Generator,
        config: Optional[SessionConfig] = None,
        eve_name: Optional[str] = "eve",
    ) -> None:
        if len(terminal_names) < 2:
            raise ValueError("the protocol needs at least two terminals")
        for name in terminal_names:
            node = medium.node(name)
            if not isinstance(node, Terminal):
                raise TypeError(f"{name!r} is not a Terminal")
        if eve_name is not None and eve_name in medium.nodes:
            if not isinstance(medium.node(eve_name), Eavesdropper):
                raise TypeError(f"{eve_name!r} is not an Eavesdropper")
        else:
            eve_name = None
        self.medium = medium
        self.terminal_names = list(terminal_names)
        self.estimator = estimator
        self.rng = rng
        self.config = config if config is not None else SessionConfig()
        self.eve_name = eve_name

    # -- phase 1 -------------------------------------------------------

    def _broadcast_x_packets(
        self, leader: str, round_id: int
    ) -> Tuple[np.ndarray, Dict[int, int]]:
        cfg = self.config
        payloads = self.rng.integers(
            0, 256, size=(cfg.n_x_packets, cfg.payload_bytes), dtype=np.uint8
        )
        eve = self.medium.node(self.eve_name) if self.eve_name else None
        x_slots: Dict[int, int] = {}
        for x_id in range(cfg.n_x_packets):
            packet = Packet(
                kind=PacketKind.X_DATA,
                src=leader,
                payload=payloads[x_id],
                meta={"x_id": x_id, "round": round_id},
            )
            x_slots[x_id] = self.medium.time
            got = self.medium.transmit(leader, packet, round_id=round_id)
            for name in got:
                node = self.medium.nodes[name]
                if isinstance(node, Terminal) and name in self.terminal_names:
                    node.record(round_id, x_id, payloads[x_id])
                elif eve is not None and name == self.eve_name:
                    eve.record(round_id, x_id, payloads[x_id])
        return payloads, x_slots

    def _collect_reports(
        self, leader: str, round_id: int
    ) -> Dict[str, Set[int]]:
        cfg = self.config
        reports: Dict[str, Set[int]] = {}
        receivers = [t for t in self.terminal_names if t != leader]
        for name in receivers:
            node = self.medium.node(name)
            received = frozenset(node.received_ids(round_id))
            report = ReceptionReport(
                round_id=round_id,
                terminal=name,
                received_ids=received,
                n_packets=cfg.n_x_packets,
            )
            packet = Packet(
                kind=PacketKind.FEEDBACK,
                src=name,
                control_bytes=report.body_bytes(),
                meta={"round": round_id},
            )
            targets = [t for t in self.terminal_names if t != name]
            reliable_broadcast(
                self.medium,
                name,
                packet,
                targets,
                round_id=round_id,
                max_attempts=cfg.max_attempts,
                backoff_slots=cfg.control_backoff_slots,
            )
            reports[name] = set(received)
        return reports

    # -- phase 2 -------------------------------------------------------

    def _leader_y_values(
        self, allocation: YAllocation, payloads: np.ndarray
    ) -> np.ndarray:
        """The leader knows every payload, so it computes y directly."""
        if allocation.total_rows == 0:
            return np.zeros((0, payloads.shape[1]), dtype=np.uint8)
        rows = []
        for block in allocation.blocks:
            block_payloads = payloads[list(block.support)]
            rows.append((block.matrix @ GFMatrix(block_payloads)).data)
        return np.vstack(rows)

    def _broadcast_z_contents(
        self,
        leader: str,
        round_id: int,
        plan: GroupCodingPlan,
        y_values: np.ndarray,
    ) -> Dict[int, np.ndarray]:
        cfg = self.config
        receivers = [t for t in self.terminal_names if t != leader]
        z_by_chunk: Dict[int, np.ndarray] = {}
        for chunk_idx, chunk in enumerate(plan.chunks):
            if chunk.n_public == 0:
                z_by_chunk[chunk_idx] = np.zeros(
                    (0, y_values.shape[1] if y_values.size else cfg.payload_bytes),
                    dtype=np.uint8,
                )
                continue
            z_vals = (chunk.z_matrix @ GFMatrix(y_values[list(chunk.y_rows)])).data
            z_by_chunk[chunk_idx] = z_vals
            for row in range(z_vals.shape[0]):
                packet = Packet(
                    kind=PacketKind.Z_CONTENT,
                    src=leader,
                    payload=z_vals[row],
                    control_bytes=z_content_overhead_bytes(),
                    meta={"round": round_id, "chunk": chunk_idx, "z_row": row},
                )
                reliable_broadcast(
                    self.medium,
                    leader,
                    packet,
                    receivers,
                    round_id=round_id,
                    max_attempts=cfg.max_attempts,
                    backoff_slots=cfg.control_backoff_slots,
                )
        return z_by_chunk

    def _broadcast_descriptor(
        self, leader: str, round_id: int, body_bytes: int
    ) -> None:
        receivers = [t for t in self.terminal_names if t != leader]
        packet = Packet(
            kind=PacketKind.DESCRIPTOR,
            src=leader,
            control_bytes=body_bytes,
            meta={"round": round_id},
        )
        reliable_broadcast(
            self.medium,
            leader,
            packet,
            receivers,
            round_id=round_id,
            max_attempts=self.config.max_attempts,
            backoff_slots=self.config.control_backoff_slots,
        )

    # -- the round -------------------------------------------------------

    def _reset_round_logs(self, round_id: int) -> None:
        """Drop stale receptions for ``round_id``.

        Consecutive experiments on one medium (continuous key refresh)
        reuse round ids; packets recorded under the same id in an
        earlier execution must not contaminate this round's reports.
        """
        for name in self.terminal_names:
            self.medium.node(name).received.pop(round_id, None)
        if self.eve_name:
            self.medium.node(self.eve_name).received.pop(round_id, None)

    def run_round(self, leader: str, round_id: int = 0) -> RoundResult:
        """Execute one full round with ``leader`` as Alice."""
        if leader not in self.terminal_names:
            raise ValueError(f"{leader!r} is not in the group")
        cfg = self.config
        self._reset_round_logs(round_id)

        # Phase 1, step 1: x-packets over the lossy broadcast channel.
        payloads, x_slots = self._broadcast_x_packets(leader, round_id)
        # Phase 1, step 2: reception reports (reliable).
        reports = self._collect_reports(leader, round_id)
        # Phase 1, step 3: plan and announce the y-identities.
        eve_received = (
            frozenset(self.medium.node(self.eve_name).received_ids(round_id))
            if self.eve_name
            else frozenset()
        )
        self.estimator.begin_round(
            RoundContext(
                leader=leader,
                reports=reports,
                n_packets=cfg.n_x_packets,
                eve_received=eve_received,
                x_slots=x_slots,
            )
        )
        allocation = plan_y_allocation(
            reports,
            self.estimator.budget,
            overhead_packets=cfg.n_x_packets,
            max_subset_size=cfg.max_subset_size,
            z_cost_factor=cfg.z_cost_factor,
        )
        descriptor = BlockDescriptorSet.from_allocation(round_id, allocation)
        self._broadcast_descriptor(leader, round_id, descriptor.body_bytes())

        # Phase 2: redistribute and extract.
        plan = build_phase2_matrices(allocation, secrecy_slack=cfg.secrecy_slack)
        phase2_descriptor = Phase2Descriptor.from_plan(round_id, plan)
        self._broadcast_descriptor(leader, round_id, phase2_descriptor.body_bytes())
        y_values = self._leader_y_values(allocation, payloads)
        z_by_chunk = self._broadcast_z_contents(leader, round_id, plan, y_values)

        # Terminal-side reconstruction (leader's copy computed directly).
        leader_secret = assemble_secret(
            plan, {g: y_values[g] for g in range(allocation.total_rows)}
        )
        for name in reports:
            node = self.medium.node(name)
            known = decode_y_from_x(
                allocation, name, node.received_payloads(round_id)
            )
            full: Dict[int, np.ndarray] = {}
            for chunk_idx, chunk in enumerate(plan.chunks):
                full.update(
                    recover_missing_y(chunk, known, z_by_chunk[chunk_idx])
                )
            terminal_secret = assemble_secret(plan, full)
            if not np.array_equal(terminal_secret, leader_secret):
                raise ProtocolError(
                    f"terminal {name} derived a different secret than the leader"
                )

        leakage = round_leakage(
            allocation, plan, eve_received, list(range(cfg.n_x_packets))
        )
        return RoundResult(
            leader=leader,
            round_id=round_id,
            n_x_packets=cfg.n_x_packets,
            reports=reports,
            allocation=allocation,
            plan=plan,
            secret=leader_secret,
            leakage=leakage,
            eve_received_ids=eve_received,
        )
