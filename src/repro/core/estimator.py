"""Estimators of what Eve missed (§3.3 of the paper).

The length of every pair-wise secret — hence of the group secret — is
capped by a *lower bound on how many x-packets Eve missed*.  The paper
discusses three ways to obtain one, all implemented here behind a common
interface:

* :class:`OracleEstimator` — ground truth from the simulator.  Not
  realisable in deployment, but it isolates construction correctness
  from estimation error (our Figure-1 validation uses it).
* :class:`FixedFractionEstimator` — the artificial-interference
  guarantee: "Eve misses at least a fraction f of any packet set,
  wherever she is", which the interferer rotation engineers.
* :class:`LeaveOneOutEstimator` — the empirical idea: pretend each
  terminal is Eve and take the most pessimistic answer.  This is the
  estimator behind Figure 2; its degradation for small n (fewer
  pretend-Eves, noisier estimates) is exactly why the paper's measured
  reliability drops as n shrinks.
* :class:`CollusionEstimator` — the k-antenna generalisation: pretend
  every k-subset of terminals together is Eve.

Estimators answer :meth:`budget(ids, exclude)` — a certified lower bound
on Eve's misses among ``ids`` — where ``exclude`` names terminals that
may not serve as evidence (a block decodable by subset ``T`` can only
cite terminals outside ``T``; they received those packets by
definition).
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    FrozenSet,
    Mapping,
    Optional,
    Sequence,
)

if TYPE_CHECKING:
    from repro.coding.privacy import BudgetFn

__all__ = [
    "RoundContext",
    "EveErasureEstimator",
    "OracleEstimator",
    "FixedFractionEstimator",
    "LeaveOneOutEstimator",
    "CollusionEstimator",
]


@dataclass
class RoundContext:
    """Everything an estimator may see for one round.

    Attributes:
        leader: name of this round's Alice.
        reports: terminal name -> set of received x-ids (from phase-1
            feedback; public information).
        n_packets: N, how many x-packets the leader transmitted — the
            denominator for empirical miss rates.
        eve_received: Eve's true reception set — populated only for the
            oracle, which represents ground truth the real system never
            has.
    """

    leader: str
    reports: Mapping[str, AbstractSet[int]]
    n_packets: int = 0
    eve_received: Optional[AbstractSet[int]] = None
    #: x-id -> medium slot at transmission time; lets schedule-aware
    #: estimators (artificial interference, §3.3 first idea) reason about
    #: which noise pattern was up for each packet.
    x_slots: Optional[Mapping[int, int]] = None

    def miss_rate(self, terminal: str) -> float:
        """Empirical global miss rate of one pretend-Eve terminal."""
        if self.n_packets <= 0:
            raise ValueError("n_packets must be set for rate estimates")
        return (self.n_packets - len(self.reports[terminal])) / self.n_packets


class EveErasureEstimator(abc.ABC):
    """Lower-bounds Eve's erasures from round evidence."""

    def begin_round(self, context: RoundContext) -> None:
        """Install this round's evidence; called once per round."""
        self._context = context

    @property
    def context(self) -> RoundContext:
        ctx = getattr(self, "_context", None)
        if ctx is None:
            raise RuntimeError("begin_round() must be called before budget()")
        return ctx

    @abc.abstractmethod
    def budget(
        self, ids: Sequence[int], exclude: FrozenSet[str] = frozenset()
    ) -> float:
        """Certified lower bound on Eve's misses among ``ids``.

        Returns a float so rate-based estimates scale smoothly with the
        query size; the allocation layer floors once per block.
        """

    def budget_fn(self) -> "BudgetFn":
        """Adapter matching :data:`repro.coding.privacy.BudgetFn`."""
        return self.budget


class OracleEstimator(EveErasureEstimator):
    """Ground truth: counts Eve's actual misses.  Simulation-only."""

    def budget(
        self, ids: Sequence[int], exclude: FrozenSet[str] = frozenset()
    ) -> float:
        eve_received = self.context.eve_received
        if eve_received is None:
            raise RuntimeError("oracle estimator needs eve_received in the context")
        return sum(1 for i in ids if i not in eve_received)


class FixedFractionEstimator(EveErasureEstimator):
    """Assume Eve misses at least ``fraction`` of any packet set.

    This encodes the artificial-interference guarantee of §3.3: the
    rotating jammers ensure Eve is inside a noise beam for a fixed share
    of slots regardless of her position.  ``fraction`` should be set
    below the engineered minimum (see the calibration test).
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction

    def budget(
        self, ids: Sequence[int], exclude: FrozenSet[str] = frozenset()
    ) -> float:
        return self.fraction * len(ids)


class LeaveOneOutEstimator(EveErasureEstimator):
    """Pretend each other terminal is Eve; take the worst case (§3.3).

    The paper computes, for every pretend-Eve ``T_j``, the size the
    secret *would* have if ``T_j`` were the adversary, and keeps the
    minimum.  The sound way to apply that evidence to an arbitrary
    packet subset is as a **rate**: pretend-Eve ``j``'s *global* miss
    rate, scaled by the subset size.  (Counting ``|ids \\ R_j|``
    directly is circular for the group construction — a support pool
    "received by all of T" is by definition missed wholesale by
    terminals outside the reception pattern, which would wildly inflate
    the estimate; the ablation benchmark demonstrates the resulting
    leakage, and :class:`NaiveLeaveOneOutEstimator` preserves that
    variant for it.)

    ``rate_margin`` is subtracted from the worst-case rate as a safety
    cushion against Eve being slightly better-positioned than every
    terminal — the paper's "more or less conservative" knob.  With no
    eligible pretend-Eve the estimator certifies nothing (returns 0),
    which is why this estimator needs n >= 3.
    """

    def __init__(self, rate_margin: float = 0.0) -> None:
        if not 0.0 <= rate_margin <= 1.0:
            raise ValueError("rate_margin must be in [0, 1]")
        self.rate_margin = rate_margin

    def _worst_rate(self, exclude: FrozenSet[str]) -> float:
        ctx = self.context
        candidates = [t for t in ctx.reports if t not in exclude]
        if not candidates:
            return 0.0
        return min(ctx.miss_rate(t) for t in candidates)

    def budget(
        self, ids: Sequence[int], exclude: FrozenSet[str] = frozenset()
    ) -> float:
        rate = max(self._worst_rate(exclude) - self.rate_margin, 0.0)
        return rate * len(ids)


class CombinedEstimator(EveErasureEstimator):
    """Take the most conservative answer across several estimators.

    The paper's §3.3 proposes *both* the artificial-interference
    guarantee and empirical leave-one-out estimation; a deployment can
    run them together and trust whichever certifies less.  The minimum
    of a sound bound and a noisy one inherits (near-)soundness while
    still tracking the empirical evidence when it is the tighter one.
    """

    def __init__(self, estimators: Sequence[EveErasureEstimator]) -> None:
        if not estimators:
            raise ValueError("need at least one estimator to combine")
        self.estimators = list(estimators)

    def begin_round(self, context: RoundContext) -> None:
        super().begin_round(context)
        for estimator in self.estimators:
            estimator.begin_round(context)

    def budget(
        self, ids: Sequence[int], exclude: FrozenSet[str] = frozenset()
    ) -> float:
        return min(e.budget(ids, exclude) for e in self.estimators)


class NaiveLeaveOneOutEstimator(EveErasureEstimator):
    """Count-based leave-one-out: ``min_j |ids \\ R_j|`` verbatim.

    Kept for the estimator-granularity ablation: on subset-structured
    support pools this estimate is circular (see
    :class:`LeaveOneOutEstimator`) and leaks badly.  Do not use it in
    anything but the ablation benchmark.
    """

    def __init__(self, margin: int = 0) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin

    def budget(
        self, ids: Sequence[int], exclude: FrozenSet[str] = frozenset()
    ) -> float:
        reports = self.context.reports
        candidates = [t for t in reports if t not in exclude]
        if not candidates:
            return 0
        worst = min(
            sum(1 for i in ids if i not in reports[t]) for t in candidates
        )
        return float(max(worst - self.margin, 0))


class CollusionEstimator(EveErasureEstimator):
    """Pretend every k-subset of terminals jointly is Eve (k antennas).

    Secures against an adversary whose combined reception equals any k
    terminals' union — the paper's §3.3 sketch for multi-antenna Eves.
    Uses union miss *rates* (see :class:`LeaveOneOutEstimator` for why).
    Costs C(n-1, k) set unions per query; fine for the paper's n <= 8.
    """

    def __init__(self, k: int, rate_margin: float = 0.0) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if not 0.0 <= rate_margin <= 1.0:
            raise ValueError("rate_margin must be in [0, 1]")
        self.k = k
        self.rate_margin = rate_margin

    def budget(
        self, ids: Sequence[int], exclude: FrozenSet[str] = frozenset()
    ) -> float:
        ctx = self.context
        candidates = [t for t in ctx.reports if t not in exclude]
        if len(candidates) < self.k or ctx.n_packets <= 0:
            return 0
        worst = None
        for combo in itertools.combinations(candidates, self.k):
            union = set()
            for t in combo:
                union |= set(ctx.reports[t])
            rate = (ctx.n_packets - len(union)) / ctx.n_packets
            worst = rate if worst is None else min(worst, rate)
        rate = max((worst or 0.0) - self.rate_margin, 0.0)
        return rate * len(ids)
