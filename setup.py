"""Packaging metadata — the single source of the dependency list.

CI installs the project with ``pip install -e .[test]`` (see
.github/workflows/ci.yml and nightly.yml), so runtime dependencies and
the test extras live here and nowhere else.  The execution environment
ships setuptools without the ``wheel`` package, so PEP 660 editable
installs cannot build; classic ``setup.py`` metadata lets
``pip install -e .`` fall back to the ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="thin-air-secrets",
    version="1.0.0",
    description=(
        "Reproduction of 'Creating shared secrets out of thin air' "
        "(HotNets 2012): group secret agreement from broadcast erasures"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
        # The static-analysis gate (CI `lint` job): reprolint itself is
        # dependency-free (stdlib ast), mypy drives the strict-typing
        # half of the contract.
        "lint": [
            "mypy",
        ],
    },
)
